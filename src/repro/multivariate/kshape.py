"""Multivariate k-Shape (extension of paper Section 3.3).

The multivariate algorithm keeps k-Shape's two-step structure:

* **assignment** uses :func:`repro.multivariate.distance.mv_sbd` — the
  pooled cross-correlation under a shared shift;
* **refinement** aligns each member toward the previous centroid with the
  *shared* shift and then runs the univariate shape extraction
  (Algorithm 2's Rayleigh-quotient eigenvector) **per dimension** on the
  aligned members.

Per-dimension extraction is the standard choice for channel-coupled data:
the shift is a property of the record, the shape is a property of each
channel.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from .._validation import as_rng, check_n_clusters, check_positive_int
from ..clustering.base import (
    ClusterResult,
    random_assignment,
    repair_empty_clusters,
)
from ..core.shape_extraction import shape_extraction
from ..exceptions import ConvergenceWarning, NotFittedError
from .distance import as_mv_dataset, mv_sbd, mv_sbd_with_alignment

__all__ = ["MultivariateKShape", "mv_shape_extraction"]


def mv_shape_extraction(
    X, reference: Optional[np.ndarray] = None
) -> np.ndarray:
    """Extract a ``(d, m)`` centroid from a ``(n, d, m)`` cluster.

    Members are aligned toward ``reference`` with the shared multivariate
    shift; each dimension's shape is then extracted independently with the
    univariate Algorithm 2.
    """
    data = as_mv_dataset(X, "X")
    n, d, m = data.shape
    if reference is not None and np.any(reference):
        aligned = np.empty_like(data)
        for i in range(n):
            _, aligned[i] = mv_sbd_with_alignment(reference, data[i])
        data = aligned
    centroid = np.empty((d, m))
    for dim in range(d):
        centroid[dim] = shape_extraction(data[:, dim, :])
    return centroid


class MultivariateKShape:
    """k-Shape for multivariate (channel-coupled) time series.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iter:
        Iteration cap.
    random_state:
        Seed or Generator for the random initial memberships.

    Attributes
    ----------
    labels_, centroids_, inertia_, n_iter_:
        As in :class:`repro.core.kshape.KShape`; centroids are ``(k, d, m)``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.multivariate import MultivariateKShape, mv_zscore
    >>> rng = np.random.default_rng(0)
    >>> t = np.linspace(0, 1, 48)
    >>> def record(freq, phase):
    ...     return np.stack([np.sin(2 * np.pi * (freq * t + phase)),
    ...                      np.cos(2 * np.pi * (freq * t + phase))])
    >>> X = mv_zscore(np.stack(
    ...     [record(2, rng.uniform(0, 1)) for _ in range(8)]
    ...     + [record(5, rng.uniform(0, 1)) for _ in range(8)]))
    >>> model = MultivariateKShape(2, random_state=1).fit(X)
    >>> [int(c) for c in np.bincount(model.labels_)]
    [8, 8]
    """

    def __init__(self, n_clusters: int, max_iter: int = 100, random_state=None):
        self.n_clusters = n_clusters
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.random_state = random_state
        self.result_: Optional[ClusterResult] = None

    def fit(self, X) -> "MultivariateKShape":
        data = as_mv_dataset(X, "X")
        n, d, m = data.shape
        k = check_n_clusters(self.n_clusters, n)
        rng = as_rng(self.random_state)
        labels = random_assignment(n, k, rng)
        centroids = np.zeros((k, d, m))
        converged = False
        n_iter = 0
        dists = np.zeros((n, k))
        for n_iter in range(1, self.max_iter + 1):
            previous = labels
            for j in range(k):
                members = data[labels == j]
                if members.shape[0] == 0:
                    continue
                centroids[j] = mv_shape_extraction(
                    members, reference=centroids[j]
                )
            for i in range(n):
                for j in range(k):
                    dists[i, j] = mv_sbd(centroids[j], data[i])
            labels = np.argmin(dists, axis=1)
            labels = repair_empty_clusters(labels, k, rng)
            if np.array_equal(labels, previous):
                converged = True
                break
        if not converged:
            warnings.warn(
                f"MultivariateKShape did not converge in {self.max_iter} "
                "iterations",
                ConvergenceWarning,
                stacklevel=2,
            )
        inertia = float(np.sum(dists[np.arange(n), labels] ** 2))
        self.result_ = ClusterResult(
            labels=labels,
            centroids=centroids.copy(),
            inertia=inertia,
            n_iter=n_iter,
            converged=converged,
        )
        return self

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_

    def _check_fitted(self) -> ClusterResult:
        if self.result_ is None:
            raise NotFittedError(
                "MultivariateKShape must be fitted before accessing results"
            )
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        return self._check_fitted().labels

    @property
    def centroids_(self) -> np.ndarray:
        return self._check_fitted().centroids

    @property
    def inertia_(self) -> float:
        return self._check_fitted().inertia

    @property
    def n_iter_(self) -> int:
        return self._check_fitted().n_iter
