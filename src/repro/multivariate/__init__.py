"""Multivariate extension: shared-shift SBD and multivariate k-Shape."""

from .distance import (
    as_mv_dataset,
    as_mv_series,
    mv_ncc_max,
    mv_sbd,
    mv_sbd_with_alignment,
    mv_shift,
    mv_zscore,
)
from .kshape import MultivariateKShape, mv_shape_extraction

__all__ = [
    "mv_sbd",
    "mv_sbd_with_alignment",
    "mv_ncc_max",
    "mv_shift",
    "mv_zscore",
    "as_mv_series",
    "as_mv_dataset",
    "MultivariateKShape",
    "mv_shape_extraction",
]
