"""Multivariate shape-based distance (extension of paper Section 3.1).

The paper treats univariate sequences; a natural extension — the one later
adopted by multivariate k-Shape variants — couples all dimensions of a
multivariate series through a **shared shift**: the cross-correlations of
corresponding dimensions are summed per lag, the sum is normalized by the
product of the Frobenius norms, and the optimal lag maximizes the pooled
coefficient:

    MVSBD(X, Y) = 1 - max_w ( sum_d CC_w(X_d, Y_d) / (||X||_F ||Y||_F) )

A shared shift is the right model when the dimensions are channels of one
phenomenon recorded on a common clock (e.g., multi-lead ECG, 3-axis
accelerometry): the phase offset is a property of the recording, not of
the channel.

Conventions: a multivariate series is a ``(d, m)`` array (one row per
dimension); a collection is ``(n, d, m)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import (
    EmptyInputError,
    InvalidParameterError,
    ShapeMismatchError,
)
from ..preprocessing.utils import next_power_of_two, shift_series_batch

__all__ = [
    "as_mv_series",
    "as_mv_dataset",
    "mv_zscore",
    "mv_shift",
    "mv_ncc_max",
    "mv_sbd",
    "mv_sbd_with_alignment",
]


def as_mv_series(X, name: str = "X") -> np.ndarray:
    """Coerce to a ``(d, m)`` float64 multivariate series."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ShapeMismatchError(
            f"{name} must be a (d, m) multivariate series, got {arr.shape}"
        )
    if arr.size == 0:
        raise EmptyInputError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains NaN or infinite values")
    return arr


def as_mv_dataset(X, name: str = "X") -> np.ndarray:
    """Coerce to a ``(n, d, m)`` float64 collection of multivariate series."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[:, None, :]  # univariate collection -> single dimension
    if arr.ndim != 3:
        raise ShapeMismatchError(
            f"{name} must be a (n, d, m) collection, got {arr.shape}"
        )
    if arr.size == 0:
        raise EmptyInputError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains NaN or infinite values")
    return arr


def mv_zscore(X, eps: float = 1e-12) -> np.ndarray:
    """z-normalize each dimension of a series (or of every series in a stack)."""
    arr = np.asarray(X, dtype=np.float64)
    mu = arr.mean(axis=-1, keepdims=True)
    sigma = arr.std(axis=-1, keepdims=True)
    out = arr - mu
    safe = sigma >= eps
    np.divide(out, sigma, out=out, where=safe)
    out[np.broadcast_to(~safe, out.shape)] = 0.0
    return out


def mv_shift(X, s: int) -> np.ndarray:
    """Shift every dimension of a ``(d, m)`` series by the same lag ``s``.

    One vectorized batched gather over the dimensions (the shared-clock
    model: every channel moves by the same lag).
    """
    arr = as_mv_series(X)
    return shift_series_batch(arr, int(s))


def _pooled_ncc(X: np.ndarray, Y: np.ndarray, eps: float) -> np.ndarray:
    """Summed per-dimension cross-correlation, coefficient-normalized."""
    d, m = X.shape
    fft_len = next_power_of_two(2 * m - 1)
    fx = np.fft.rfft(X, fft_len, axis=1)
    fy = np.fft.rfft(Y, fft_len, axis=1)
    cc = np.fft.irfft(fx * np.conj(fy), fft_len, axis=1).sum(axis=0)
    if m > 1:
        full = np.concatenate((cc[-(m - 1):], cc[:m]))
    else:
        full = cc[:1]
    denom = np.linalg.norm(X) * np.linalg.norm(Y)
    if denom < eps:
        return np.zeros_like(full)
    return full / denom


def mv_ncc_max(X, Y, eps: float = 1e-12) -> Tuple[float, int]:
    """Peak pooled NCC and the shared shift of ``Y`` toward ``X``."""
    Xv = as_mv_series(X, "X")
    Yv = as_mv_series(Y, "Y")
    if Xv.shape != Yv.shape:
        raise ShapeMismatchError(
            f"series must share their (d, m) shape: {Xv.shape} vs {Yv.shape}"
        )
    seq = _pooled_ncc(Xv, Yv, eps)
    idx = int(np.argmax(seq))
    m = Xv.shape[1]
    return float(seq[idx]), idx - (m - 1)


def mv_sbd(X, Y) -> float:
    """Multivariate SBD in [0, 2] under a shared optimal shift."""
    value, _ = mv_ncc_max(X, Y)
    dist = 1.0 - value
    if -1e-9 < dist < 0.0:
        dist = 0.0
    return dist


def mv_sbd_with_alignment(X, Y) -> Tuple[float, np.ndarray]:
    """Multivariate SBD plus ``Y`` aligned toward ``X`` by the shared shift."""
    value, shift = mv_ncc_max(X, Y)
    dist = 1.0 - value
    if -1e-9 < dist < 0.0:
        dist = 0.0
    return dist, mv_shift(as_mv_series(Y, "Y"), shift)
