"""Train/test splitting utilities for custom datasets.

The archive and UCR loaders arrive pre-split; for user-assembled
collections (``make_labeled_set`` or external data), :func:`stratified_split`
produces the same structure: a per-class proportional split, returned
either as arrays or packaged as a :class:`~repro.datasets.base.Dataset`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import as_dataset, as_rng
from ..exceptions import InvalidParameterError, ShapeMismatchError
from .base import Dataset

__all__ = ["stratified_split", "as_split_dataset"]


def stratified_split(
    X,
    y,
    train_fraction: float = 0.3,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a labeled collection per class.

    Every class contributes ``round(train_fraction * count)`` sequences to
    the training side, with at least one sequence per class on each side
    (classes with fewer than two members are rejected).

    Returns
    -------
    (X_train, y_train, X_test, y_test)
    """
    data = as_dataset(X, "X")
    labels = np.asarray(y).ravel()
    if labels.shape[0] != data.shape[0]:
        raise ShapeMismatchError("y must have one label per sequence")
    if not 0.0 < train_fraction < 1.0:
        raise InvalidParameterError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    generator = as_rng(rng)
    train_idx, test_idx = [], []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        if members.shape[0] < 2:
            raise InvalidParameterError(
                f"class {cls!r} has fewer than 2 sequences; cannot split"
            )
        members = generator.permutation(members)
        n_train = int(round(train_fraction * members.shape[0]))
        n_train = min(max(n_train, 1), members.shape[0] - 1)
        train_idx.extend(members[:n_train])
        test_idx.extend(members[n_train:])
    train_idx = np.array(sorted(train_idx))
    test_idx = np.array(sorted(test_idx))
    return data[train_idx], labels[train_idx], data[test_idx], labels[test_idx]


def as_split_dataset(
    name: str,
    X,
    y,
    train_fraction: float = 0.3,
    rng=None,
    znormalize: bool = True,
) -> Dataset:
    """Split and package a labeled collection as a :class:`Dataset`."""
    X_train, y_train, X_test, y_test = stratified_split(
        X, y, train_fraction=train_fraction, rng=rng
    )
    return Dataset.from_raw(
        name, X_train, y_train, X_test, y_test,
        metadata={"family": "custom", "train_fraction": train_fraction},
        znormalize=znormalize,
    )
