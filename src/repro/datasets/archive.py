"""The synthetic archive standing in for the UCR collection (paper Section 4).

The UCR archive is not redistributable, so the evaluation runs over 30
seeded synthetic datasets spanning the same axes: 2-5 classes, lengths
32-512, tens-to-hundreds of sequences, and pattern families exercising the
Section 2.2 distortions (phase shift, local warping, event position/width,
frequency content, trends, noise). Every dataset is deterministic in its
seed, z-normalized per sequence, and split into train/test like UCR.

Use :func:`list_datasets` for the names, :func:`load_dataset` for one
dataset, and :func:`load_archive` for the whole suite.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from .._validation import as_rng
from ..exceptions import UnknownNameError
from .base import Dataset
from .cbf import make_cbf
from .ecg import make_ecg_five_days
from .generators import (
    chirp,
    double_pulse,
    gaussian_pulse,
    make_labeled_set,
    ramp,
    sawtooth_wave,
    sine_wave,
    square_wave,
    step_function,
    triangle_wave,
)

__all__ = ["list_datasets", "load_dataset", "load_archive", "ARCHIVE_SEED"]

ARCHIVE_SEED = 20150531  # SIGMOD'15 started May 31, 2015.


# ---------------------------------------------------------------------------
# Class-maker factories. Each returns ``maker(t, rng) -> values`` with the
# within-class randomness (phase, position, width, ...) drawn from ``rng``.
# ---------------------------------------------------------------------------

def _periodic(pattern, freq: float, max_phase: float = 1.0):
    def maker(t, rng):
        return pattern(t, freq=freq, phase=rng.uniform(0.0, max_phase))

    return maker


def _harmonic_mix(weights: Tuple[float, ...], max_phase: float = 1.0):
    def maker(t, rng):
        phase = rng.uniform(0.0, max_phase)
        out = np.zeros_like(t)
        for h, w in enumerate(weights, start=1):
            out += w * sine_wave(t, freq=h, phase=h * phase)
        return out

    return maker


def _pulse(center: float, width: float, jitter: float = 0.05):
    def maker(t, rng):
        c = center + rng.uniform(-jitter, jitter)
        w = width * rng.uniform(0.8, 1.25)
        return gaussian_pulse(t, c, w)

    return maker


def _double_pulse(spacing: float, jitter: float = 0.04):
    def maker(t, rng):
        first = rng.uniform(0.15, 0.45)
        gap = spacing + rng.uniform(-jitter, jitter)
        return double_pulse(
            t, centers=(first, min(first + gap, 0.95)), widths=(0.05, 0.05)
        )

    return maker


def _two_events(first_up: bool, second_up: bool):
    def maker(t, rng):
        p1 = rng.uniform(0.15, 0.35)
        p2 = rng.uniform(0.55, 0.8)
        s1 = 1.0 if first_up else -1.0
        s2 = 1.0 if second_up else -1.0
        return s1 * gaussian_pulse(t, p1, 0.04) + s2 * gaussian_pulse(t, p2, 0.04)

    return maker


def _step(direction: float, lo: float = 0.3, hi: float = 0.7):
    def maker(t, rng):
        return direction * step_function(t, rng.uniform(lo, hi))

    return maker


def _ramp(up: bool):
    def maker(t, rng):
        start = rng.uniform(0.1, 0.3)
        end = rng.uniform(0.6, 0.9)
        r = ramp(t, start, end)
        return r if up else 1.0 - r

    return maker


def _chirp(up: bool):
    def maker(t, rng):
        f0 = rng.uniform(0.8, 1.2)
        f1 = rng.uniform(5.0, 7.0)
        return chirp(t, f0, f1) if up else chirp(t, f1, f0)

    return maker


def _trend(slope: float, season_freq: float = 3.0, season_amp: float = 0.4):
    def maker(t, rng):
        phase = rng.uniform(0.0, 1.0)
        return slope * t + season_amp * sine_wave(t, season_freq, phase)

    return maker


def _am_signal(modulated: bool):
    def maker(t, rng):
        phase = rng.uniform(0.0, 1.0)
        carrier = sine_wave(t, 8.0, phase)
        if not modulated:
            return carrier
        envelope = 0.5 * (1.0 + sine_wave(t, 1.0, rng.uniform(0.0, 1.0)))
        return envelope * carrier

    return maker


def _random_walk(smooth: bool):
    def maker(t, rng):
        steps = rng.normal(0.0, 1.0, t.shape[0])
        walk = np.cumsum(steps)
        if smooth:
            kernel = np.ones(5) / 5.0
            walk = np.convolve(walk, kernel, mode="same")
        else:
            walk = steps  # white noise: rough complexity class
        return walk

    return maker


def _spike_train(rate: float):
    def maker(t, rng):
        m = t.shape[0]
        out = np.zeros(m)
        n_spikes = max(1, rng.poisson(rate))
        positions = rng.integers(0, m, size=n_spikes)
        out[positions] = rng.uniform(0.8, 1.2, size=n_spikes)
        return out

    return maker


def _duty_cycle(duty: float):
    def maker(t, rng):
        phase = rng.uniform(0.0, 1.0)
        cycle = np.mod(2.0 * t + phase, 1.0)
        return np.where(cycle < duty, 1.0, -1.0)

    return maker


def _damped(growing: bool):
    def maker(t, rng):
        phase = rng.uniform(0.0, 0.3)
        envelope = np.exp((2.0 if growing else -2.0) * t)
        return envelope * sine_wave(t, 4.0, phase)

    return maker


def _freq_trend(freq: float, slope: float):
    def maker(t, rng):
        phase = rng.uniform(0.0, 1.0)
        return slope * t + sine_wave(t, freq, phase)

    return maker


def _plateau(width: float):
    def maker(t, rng):
        start = rng.uniform(0.1, 0.9 - width)
        return np.where((t >= start) & (t <= start + width), 1.0, 0.0)

    return maker


# ---------------------------------------------------------------------------
# Dataset builders.
# ---------------------------------------------------------------------------

def _from_makers(
    name: str,
    makers,
    n_train_pc: int,
    n_test_pc: int,
    length: int,
    noise: float,
    seed: int,
    warp: float = 0.0,
    family: str = "synthetic",
) -> Dataset:
    rng = as_rng(seed)
    X_train, y_train = make_labeled_set(
        makers, n_train_pc, length, noise=noise, warp_strength=warp, rng=rng
    )
    X_test, y_test = make_labeled_set(
        makers, n_test_pc, length, noise=noise, warp_strength=warp, rng=rng
    )
    return Dataset.from_raw(
        name,
        X_train,
        y_train,
        X_test,
        y_test,
        metadata={
            "family": family,
            "seed": seed,
            "noise": noise,
            "warp": warp,
        },
    )


def _ecg_builder(name: str, seed: int, max_phase: float, n_tr: int, n_te: int) -> Dataset:
    rng = as_rng(seed)
    X_train, y_train = make_ecg_five_days(n_tr, 136, 0.12, max_phase, rng)
    X_test, y_test = make_ecg_five_days(n_te, 136, 0.12, max_phase, rng)
    return Dataset.from_raw(
        name, X_train, y_train, X_test, y_test,
        metadata={"family": "ecg", "seed": seed, "max_phase": max_phase},
    )


def _cbf_builder(name: str, seed: int, n_tr: int, n_te: int, length: int) -> Dataset:
    rng = as_rng(seed)
    X_train, y_train = make_cbf(n_tr, length, rng)
    X_test, y_test = make_cbf(n_te, length, rng)
    return Dataset.from_raw(
        name, X_train, y_train, X_test, y_test,
        metadata={"family": "cbf", "seed": seed},
    )


def _spec(name, makers, n_tr, n_te, length, noise, warp=0.0, family="synthetic"):
    return (
        name,
        lambda seed: _from_makers(
            name, makers, n_tr, n_te, length, noise, seed, warp, family
        ),
    )


def _build_specs() -> List[Tuple[str, Callable[[int], Dataset]]]:
    specs: List[Tuple[str, Callable[[int], Dataset]]] = [
        # Periodic families — strong phase shift, SBD/DTW territory.
        _spec("SineSquare", [_periodic(sine_wave, 2), _periodic(square_wave, 2)],
              10, 30, 64, 0.25),
        _spec("TriSaw", [_periodic(triangle_wave, 2), _periodic(sawtooth_wave, 2)],
              10, 30, 64, 0.2),
        _spec("Waves4", [_periodic(sine_wave, 2), _periodic(square_wave, 2),
                         _periodic(triangle_wave, 2), _periodic(sawtooth_wave, 2)],
              8, 20, 96, 0.2),
        _spec("FreqSines", [_periodic(sine_wave, f) for f in (1, 2, 3)],
              8, 25, 96, 0.3),
        _spec("Harmonics", [_harmonic_mix((1.0,)), _harmonic_mix((1.0, 0.7)),
                            _harmonic_mix((1.0, 0.0, 0.7))],
              8, 25, 128, 0.25),
        _spec("NoisySines", [_periodic(sine_wave, 2), _periodic(triangle_wave, 2)],
              12, 35, 64, 0.6),
        _spec("LongSines", [_periodic(sine_wave, 3), _harmonic_mix((1.0, 0.6))],
              6, 14, 512, 0.3),
        _spec("ShortWaves", [_periodic(sine_wave, 1), _periodic(square_wave, 1),
                             _periodic(sawtooth_wave, 1)],
              10, 30, 32, 0.25),
        # Event-position / width families — GunPoint-like.
        _spec("PulsePosition", [_pulse(0.3, 0.06), _pulse(0.7, 0.06)],
              10, 30, 128, 0.2, family="events"),
        _spec("PulseWidth", [_pulse(0.5, 0.04, jitter=0.1),
                             _pulse(0.5, 0.14, jitter=0.1)],
              10, 30, 128, 0.2, family="events"),
        _spec("Bumps5", [_pulse(c, 0.05) for c in (0.15, 0.32, 0.5, 0.68, 0.85)],
              6, 18, 128, 0.2, family="events"),
        _spec("DoublePulse", [_double_pulse(s) for s in (0.2, 0.35, 0.5)],
              8, 24, 128, 0.2, family="events"),
        _spec("TwoPatterns", [_two_events(a, b) for a in (True, False)
                              for b in (True, False)],
              8, 20, 128, 0.25, family="events"),
        _spec("Steps3", [_step(1.0), _step(-1.0), _double_pulse(0.3)],
              8, 24, 96, 0.25, family="events"),
        _spec("Ramps", [_ramp(True), _ramp(False)],
              10, 30, 96, 0.25, family="events"),
        # Frequency-sweep and modulation families.
        _spec("Chirps", [_chirp(True), _chirp(False)],
              10, 30, 128, 0.3, family="spectral"),
        _spec("AMSignals", [_am_signal(True), _am_signal(False)],
              10, 30, 128, 0.3, family="spectral"),
        # Trend/seasonality families.
        _spec("Trends3", [_trend(3.0), _trend(0.0), _trend(-3.0)],
              8, 24, 96, 0.3, family="trend"),
        _spec("SeasonalTrend", [_trend(s, f) for s in (2.5, -2.5)
                                for f in (2.0, 5.0)],
              6, 18, 128, 0.3, family="trend"),
        # Locally warped families — cDTW/DTW territory.
        _spec("WarpedSines", [_periodic(sine_wave, 2, 0.15),
                              _periodic(square_wave, 2, 0.15)],
              10, 30, 96, 0.2, warp=0.06, family="warped"),
        _spec("WarpedPulses", [_pulse(0.35, 0.07, jitter=0.03),
                               _pulse(0.65, 0.07, jitter=0.03)],
              10, 30, 96, 0.2, warp=0.08, family="warped"),
        # Complexity / stochastic-structure families.
        _spec("RandomWalks", [_random_walk(True), _random_walk(False)],
              10, 30, 128, 0.1, family="stochastic"),
        _spec("SpikeTrains", [_spike_train(r) for r in (3.0, 10.0, 25.0)],
              8, 24, 128, 0.05, family="stochastic"),
        # Waveform-structure families.
        _spec("DutyCycle", [_duty_cycle(0.2), _duty_cycle(0.5)],
              10, 30, 96, 0.25, family="synthetic"),
        _spec("DampedOsc", [_damped(False), _damped(True)],
              10, 30, 128, 0.25, family="synthetic"),
        _spec("FreqTrend", [_freq_trend(f, sl) for f in (2.0, 6.0)
                            for sl in (2.0, -2.0)],
              6, 18, 128, 0.3, family="trend"),
        _spec("Plateaus", [_plateau(w) for w in (0.1, 0.25, 0.45)],
              8, 24, 128, 0.2, family="events"),
    ]
    specs.append(("ECGFiveDays-syn",
                  lambda seed: _ecg_builder("ECGFiveDays-syn", seed, 0.35, 12, 40)))
    specs.append(("ECGPhase",
                  lambda seed: _ecg_builder("ECGPhase", seed, 0.6, 12, 40)))
    specs.append(("CBF", lambda seed: _cbf_builder("CBF", seed, 10, 30, 128)))
    return specs


_SPECS: Dict[str, Callable[[int], Dataset]] = dict(_build_specs())
_CACHE: Dict[Tuple[str, int], Dataset] = {}


def list_datasets() -> Tuple[str, ...]:
    """Names of all archive datasets, in their canonical order."""
    return tuple(_SPECS)


def load_dataset(name: str, seed: int = None) -> Dataset:
    """Load one archive dataset by name.

    Parameters
    ----------
    name:
        A name from :func:`list_datasets`.
    seed:
        Override the archive seed (each dataset derives its own stream from
        ``seed`` plus a stable per-name offset).

    Raises
    ------
    UnknownNameError
        For names outside the archive; the message lists valid ones.
    """
    if name not in _SPECS:
        raise UnknownNameError(
            f"unknown dataset {name!r}; available: {', '.join(_SPECS)}"
        )
    base_seed = ARCHIVE_SEED if seed is None else seed
    # A stable per-dataset offset decorrelates the streams.
    offset = sum(ord(c) for c in name)
    key = (name, base_seed)
    if key not in _CACHE:
        _CACHE[key] = _SPECS[name](base_seed + offset)
    return _CACHE[key]


def load_archive(seed: int = None) -> List[Dataset]:
    """Load the full archive (30 datasets) in canonical order."""
    return [load_dataset(name, seed=seed) for name in list_datasets()]
