"""Dataset container mirroring the UCR archive layout (paper Section 4).

UCR datasets are class-labeled, z-normalized, equal-length, and pre-split
into train and test sets. :class:`Dataset` captures exactly that: the
distance-measure evaluation (Table 2) uses the split, while the clustering
evaluation (Tables 3-4) fuses train and test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .._validation import as_dataset
from ..exceptions import ShapeMismatchError
from ..preprocessing.normalization import zscore

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A labeled, split, z-normalized time-series dataset.

    Attributes
    ----------
    name:
        Identifier used by the registry and result tables.
    X_train, X_test:
        ``(n, m)`` float arrays of z-normalized sequences.
    y_train, y_test:
        Integer class labels, one per sequence.
    metadata:
        Free-form provenance (generator family, seed, noise level, ...).
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        for attr in ("X_train", "X_test"):
            arr = as_dataset(getattr(self, attr), attr)
            object.__setattr__(self, attr, arr)
        for x_attr, y_attr in (("X_train", "y_train"), ("X_test", "y_test")):
            labels = np.asarray(getattr(self, y_attr)).ravel()
            if labels.shape[0] != getattr(self, x_attr).shape[0]:
                raise ShapeMismatchError(
                    f"{y_attr} must have one label per {x_attr} sequence"
                )
            object.__setattr__(self, y_attr, labels)
        if self.X_train.shape[1] != self.X_test.shape[1]:
            raise ShapeMismatchError(
                "train and test sequences must share their length"
            )

    @classmethod
    def from_raw(
        cls,
        name: str,
        X_train,
        y_train,
        X_test,
        y_test,
        metadata: Dict = None,
        znormalize: bool = True,
    ) -> "Dataset":
        """Build a dataset, z-normalizing each sequence (the UCR convention)."""
        X_train = as_dataset(X_train, "X_train")
        X_test = as_dataset(X_test, "X_test")
        if znormalize:
            X_train = zscore(X_train)
            X_test = zscore(X_test)
        return cls(
            name=name,
            X_train=X_train,
            y_train=np.asarray(y_train),
            X_test=X_test,
            y_test=np.asarray(y_test),
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    @property
    def X(self) -> np.ndarray:
        """Fused train+test sequences (the clustering evaluation input)."""
        return np.vstack([self.X_train, self.X_test])

    @property
    def y(self) -> np.ndarray:
        """Fused train+test labels."""
        return np.concatenate([self.y_train, self.y_test])

    @property
    def n_classes(self) -> int:
        return int(np.unique(self.y).shape[0])

    @property
    def length(self) -> int:
        return int(self.X_train.shape[1])

    @property
    def n_train(self) -> int:
        return int(self.X_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.X_test.shape[0])

    @property
    def n_total(self) -> int:
        return self.n_train + self.n_test

    def summary(self) -> str:
        """One-line description like the UCR archive index."""
        return (
            f"{self.name}: {self.n_classes} classes, length {self.length}, "
            f"{self.n_train} train / {self.n_test} test"
        )
