"""Datasets: synthetic UCR-style archive, CBF, ECG, and real-UCR loaders."""

from .archive import ARCHIVE_SEED, list_datasets, load_archive, load_dataset
from .base import Dataset
from .cbf import CBF_CLASSES, cbf_instance, make_cbf, make_cbf_dataset
from .ecg import ecg_beat, make_ecg_dataset, make_ecg_five_days
from .generators import (
    chirp,
    double_pulse,
    gaussian_pulse,
    make_labeled_set,
    ramp,
    sawtooth_wave,
    sine_wave,
    smooth_random_warp,
    square_wave,
    step_function,
    triangle_wave,
)
from .io import (
    export_ucr_format,
    load_result,
    load_saved_dataset,
    save_dataset,
    save_result,
)
from .split import as_split_dataset, stratified_split
from .streams import replay_stream
from .ucr import load_ucr_dataset, read_ucr_file

__all__ = [
    "Dataset",
    "list_datasets",
    "load_dataset",
    "load_archive",
    "ARCHIVE_SEED",
    "make_cbf",
    "make_cbf_dataset",
    "cbf_instance",
    "CBF_CLASSES",
    "make_ecg_five_days",
    "make_ecg_dataset",
    "ecg_beat",
    "make_labeled_set",
    "sine_wave",
    "square_wave",
    "triangle_wave",
    "sawtooth_wave",
    "gaussian_pulse",
    "double_pulse",
    "step_function",
    "ramp",
    "chirp",
    "smooth_random_warp",
    "load_ucr_dataset",
    "read_ucr_file",
    "save_dataset",
    "load_saved_dataset",
    "export_ucr_format",
    "save_result",
    "load_result",
    "replay_stream",
    "stratified_split",
    "as_split_dataset",
]
