"""Shape primitives and distortions for the synthetic archive.

The UCR archive spans pattern families whose within-class variation comes
from the distortions catalogued in the paper's Section 2.2 — phase shift
(global alignment), local warping, amplitude/offset changes, and noise.
These primitives generate such families deterministically from a seeded
:class:`numpy.random.Generator`, so every archive dataset is reproducible.

All pattern functions take a time grid ``t`` in ``[0, 1]`` and return an
array of the same shape.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import InvalidParameterError

__all__ = [
    "sine_wave",
    "square_wave",
    "triangle_wave",
    "sawtooth_wave",
    "gaussian_pulse",
    "double_pulse",
    "step_function",
    "ramp",
    "chirp",
    "smooth_random_warp",
    "make_labeled_set",
]


def sine_wave(t, freq: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Sinusoid with ``freq`` cycles over the grid and phase in cycles."""
    return np.sin(2.0 * np.pi * (freq * t + phase))


def square_wave(t, freq: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Square wave: the sign of the matching sinusoid."""
    return np.sign(sine_wave(t, freq, phase) + 1e-12)


def triangle_wave(t, freq: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Triangle wave with values in [-1, 1]."""
    x = np.mod(freq * t + phase, 1.0)
    return 4.0 * np.abs(x - 0.5) - 1.0


def sawtooth_wave(t, freq: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Sawtooth wave rising from -1 to 1 each cycle."""
    return 2.0 * np.mod(freq * t + phase, 1.0) - 1.0


def gaussian_pulse(t, center: float = 0.5, width: float = 0.1) -> np.ndarray:
    """Bell-shaped pulse centered at ``center`` with standard deviation ``width``."""
    if width <= 0:
        raise InvalidParameterError(f"width must be positive, got {width}")
    return np.exp(-0.5 * ((t - center) / width) ** 2)


def double_pulse(
    t,
    centers: Sequence[float] = (0.3, 0.7),
    widths: Sequence[float] = (0.06, 0.06),
    amplitudes: Sequence[float] = (1.0, 1.0),
) -> np.ndarray:
    """Sum of Gaussian pulses (a simple multi-event pattern)."""
    out = np.zeros_like(np.asarray(t, dtype=np.float64))
    for c, w, a in zip(centers, widths, amplitudes):
        out += a * gaussian_pulse(t, c, w)
    return out


def step_function(t, position: float = 0.5, height: float = 1.0) -> np.ndarray:
    """0/``height`` step rising at ``position``."""
    return np.where(np.asarray(t) >= position, height, 0.0)


def ramp(t, start: float = 0.2, end: float = 0.8) -> np.ndarray:
    """Linear rise from 0 to 1 between ``start`` and ``end``, clipped outside."""
    if end <= start:
        raise InvalidParameterError("ramp requires end > start")
    tt = np.asarray(t, dtype=np.float64)
    return np.clip((tt - start) / (end - start), 0.0, 1.0)


def chirp(t, f0: float = 1.0, f1: float = 6.0) -> np.ndarray:
    """Sinusoid whose frequency sweeps linearly from ``f0`` to ``f1``."""
    tt = np.asarray(t, dtype=np.float64)
    return np.sin(2.0 * np.pi * (f0 * tt + 0.5 * (f1 - f0) * tt**2))


def smooth_random_warp(t, strength: float, rng) -> np.ndarray:
    """Monotone random re-timing of the grid (local warping distortion).

    Adds a smooth random perturbation (a few random sinusoidal modes) to the
    identity map and renormalizes it to stay a monotone bijection of [0, 1].
    ``strength`` around 0.02-0.1 gives mild-to-strong local warping — the
    non-linear alignment regime that favors DTW-style measures.
    """
    if strength < 0:
        raise InvalidParameterError(f"strength must be >= 0, got {strength}")
    tt = np.asarray(t, dtype=np.float64)
    generator = as_rng(rng)
    warped = tt.copy()
    for mode in range(1, 4):
        amp = strength * generator.uniform(-1.0, 1.0) / mode
        phase = generator.uniform(0.0, 1.0)
        warped = warped + amp * np.sin(2.0 * np.pi * (mode * tt + phase))
    # Enforce monotonicity and the [0, 1] range.
    warped = np.maximum.accumulate(warped)
    lo, hi = warped[0], warped[-1]
    if hi - lo <= 0:
        return tt
    return (warped - lo) / (hi - lo)


ClassMaker = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def make_labeled_set(
    class_makers: Sequence[ClassMaker],
    n_per_class: int,
    length: int,
    noise: float = 0.1,
    warp_strength: float = 0.0,
    rng=None,
):
    """Generate a labeled set from per-class pattern makers.

    Parameters
    ----------
    class_makers:
        One callable per class: ``maker(t, rng) -> values``. Makers are
        expected to randomize their own within-class parameters (phase,
        event position, ...) from ``rng``.
    n_per_class:
        Instances generated for each class.
    length:
        Sequence length ``m``.
    noise:
        Standard deviation of additive white Gaussian noise.
    warp_strength:
        When positive, each instance's time grid is randomly warped with
        :func:`smooth_random_warp` before the maker is evaluated.
    rng:
        Seed or Generator.

    Returns
    -------
    (X, y):
        ``(n_classes * n_per_class, length)`` sequences and integer labels.
    """
    check_positive_int(n_per_class, "n_per_class")
    check_positive_int(length, "length")
    if noise < 0:
        raise InvalidParameterError(f"noise must be >= 0, got {noise}")
    generator = as_rng(rng)
    t = np.linspace(0.0, 1.0, length)
    rows = []
    labels = []
    for label, maker in enumerate(class_makers):
        for _ in range(n_per_class):
            grid = (
                smooth_random_warp(t, warp_strength, generator)
                if warp_strength > 0
                else t
            )
            values = np.asarray(maker(grid, generator), dtype=np.float64)
            if values.shape[0] != length:
                raise InvalidParameterError(
                    f"class maker returned length {values.shape[0]}, "
                    f"expected {length}"
                )
            values = values + generator.normal(0.0, noise, size=length)
            rows.append(values)
            labels.append(label)
    return np.asarray(rows), np.asarray(labels)
