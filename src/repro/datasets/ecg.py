"""Synthetic ECG generator modeled on ECGFiveDays (paper Figures 1 and 4).

The paper's running example is the two-class ECGFiveDays dataset: both
classes contain heartbeats of the same patient, but

* **class A** shows a *sharp* rise, a drop, and another gradual increase;
* **class B** shows a *gradual* increase, a drop, and another gradual
  increase.

Instances of both classes are out of phase with each other (heartbeats can
start anywhere in the measurement window), which is exactly the global
alignment regime where SBD/k-Shape excel (the paper reports 84% k-Shape
accuracy vs 53% for k-medoids+cDTW on this dataset).

We synthesize beats as compositions of localized pulses whose onsets share
a per-instance random phase, with class A's leading pulse much sharper than
class B's.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import as_rng, check_positive_int
from .base import Dataset
from .generators import gaussian_pulse

__all__ = ["ecg_beat", "make_ecg_five_days", "make_ecg_dataset"]


def ecg_beat(t, kind: str, phase: float, jitter_rng) -> np.ndarray:
    """One ECG-like beat on the grid ``t`` with global phase ``phase``.

    ``kind="A"`` uses a narrow (sharp) leading pulse; ``kind="B"`` a wide
    (gradual) one. Both share the drop and the trailing gradual increase, so
    only the leading edge separates the classes — as in Figure 1.
    """
    tt = np.mod(np.asarray(t, dtype=np.float64) - phase, 1.0)
    jw = jitter_rng.uniform(0.9, 1.1)
    if kind == "A":
        lead = 2.2 * gaussian_pulse(tt, 0.18, 0.025 * jw)   # sharp rise
    else:
        lead = 1.4 * gaussian_pulse(tt, 0.18, 0.085 * jw)   # gradual rise
    drop = -1.6 * gaussian_pulse(tt, 0.38, 0.05 * jw)       # shared drop
    tail = 1.0 * gaussian_pulse(tt, 0.72, 0.12 * jw)        # gradual increase
    return lead + drop + tail


def make_ecg_five_days(
    n_per_class: int = 30,
    length: int = 136,
    noise: float = 0.12,
    max_phase: float = 0.35,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the two-class ECG set: ``(2 * n_per_class, length)`` plus labels.

    Parameters
    ----------
    max_phase:
        Largest random phase offset (fraction of the window), controlling
        how far out of phase instances can be.
    """
    check_positive_int(n_per_class, "n_per_class")
    generator = as_rng(rng)
    t = np.linspace(0.0, 1.0, length)
    rows = []
    labels = []
    for label, kind in enumerate(("A", "B")):
        for _ in range(n_per_class):
            phase = generator.uniform(0.0, max_phase)
            beat = ecg_beat(t, kind, phase, generator)
            rows.append(beat + generator.normal(0.0, noise, size=length))
            labels.append(label)
    return np.asarray(rows), np.asarray(labels)


def make_ecg_dataset(
    n_train_per_class: int = 12,
    n_test_per_class: int = 40,
    length: int = 136,
    noise: float = 0.12,
    max_phase: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """ECGFiveDays analog as a split :class:`~repro.datasets.base.Dataset`."""
    generator = as_rng(seed)
    X_train, y_train = make_ecg_five_days(
        n_train_per_class, length, noise, max_phase, generator
    )
    X_test, y_test = make_ecg_five_days(
        n_test_per_class, length, noise, max_phase, generator
    )
    return Dataset.from_raw(
        "ECGFiveDays-syn",
        X_train,
        y_train,
        X_test,
        y_test,
        metadata={"family": "ecg", "seed": seed, "max_phase": max_phase},
    )
