"""Dataset and result persistence.

Round-trip helpers so experiments can be saved, shared, and re-loaded:

* :func:`save_dataset` / :func:`load_saved_dataset` — a
  :class:`~repro.datasets.base.Dataset` as a single ``.npz`` archive
  (arrays) with the metadata embedded as JSON;
* :func:`export_ucr_format` — write a dataset as UCR-style
  ``<Name>_TRAIN.tsv`` / ``<Name>_TEST.tsv`` text files, the format
  :func:`repro.datasets.ucr.load_ucr_dataset` reads back — useful for
  feeding the synthetic archive into other tools;
* :func:`save_result` / :func:`load_result` — a
  :class:`~repro.clustering.base.ClusterResult` as ``.npz``.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from ..clustering.base import ClusterResult
from ..exceptions import InvalidParameterError
from .base import Dataset

__all__ = [
    "save_dataset",
    "load_saved_dataset",
    "export_ucr_format",
    "save_result",
    "load_result",
]


def _load_archive_checked(path: str, required: tuple, what: str):
    """Open an ``.npz`` and verify its required arrays, with typed errors.

    Truncated downloads, non-npz files, and archives written by something
    else all surface as :class:`~repro.exceptions.InvalidParameterError`
    instead of leaking zipfile/numpy internals to the caller.
    """
    if not os.path.exists(path):
        raise InvalidParameterError(f"no such file: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        # bad magic, pickled payloads, truncation, non-zip bytes
        raise InvalidParameterError(
            f"{path} is not a readable {what} archive: {exc}"
        ) from exc
    missing = [key for key in required if key not in archive.files]
    if missing:
        archive.close()
        raise InvalidParameterError(
            f"{path} is not a {what} archive: missing arrays {missing}"
        )
    return archive


def save_dataset(dataset: Dataset, path: str) -> str:
    """Persist a dataset as a ``.npz`` archive; returns the path written."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    np.savez_compressed(
        path,
        X_train=dataset.X_train,
        y_train=dataset.y_train,
        X_test=dataset.X_test,
        y_test=dataset.y_test,
        name=np.array(dataset.name),
        metadata=np.array(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_saved_dataset(path: str) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Raises
    ------
    InvalidParameterError
        The file is missing, unreadable, or not a dataset archive (wrong
        or absent arrays, undecodable metadata).
    """
    required = ("name", "X_train", "y_train", "X_test", "y_test", "metadata")
    with _load_archive_checked(path, required, "dataset") as archive:
        try:
            metadata = json.loads(str(archive["metadata"]))
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"{path} carries undecodable dataset metadata: {exc}"
            ) from exc
        return Dataset(
            name=str(archive["name"]),
            X_train=archive["X_train"],
            y_train=archive["y_train"],
            X_test=archive["X_test"],
            y_test=archive["y_test"],
            metadata=metadata,
        )


def export_ucr_format(dataset: Dataset, directory: str) -> tuple:
    """Write a dataset as UCR-style TSV files under ``directory``.

    Creates ``<name>_TRAIN.tsv`` and ``<name>_TEST.tsv`` (label first,
    tab-separated values), readable by
    :func:`repro.datasets.ucr.load_ucr_dataset`.

    Returns
    -------
    (train_path, test_path)
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for split, X, y in (
        ("TRAIN", dataset.X_train, dataset.y_train),
        ("TEST", dataset.X_test, dataset.y_test),
    ):
        path = os.path.join(directory, f"{dataset.name}_{split}.tsv")
        with open(path, "w") as handle:
            for label, row in zip(y, X):
                values = "\t".join(f"{v:.10g}" for v in row)
                handle.write(f"{label}\t{values}\n")
        paths.append(path)
    return tuple(paths)


def save_result(result: ClusterResult, path: str) -> str:
    """Persist a clustering result as a ``.npz`` archive."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    centroids = (
        result.centroids
        if result.centroids is not None
        else np.empty((0, 0))
    )
    np.savez_compressed(
        path,
        labels=result.labels,
        centroids=centroids,
        has_centroids=np.array(result.centroids is not None),
        inertia=np.array(result.inertia),
        n_iter=np.array(result.n_iter),
        converged=np.array(result.converged),
        extra=np.array(json.dumps(result.extra, default=str)),
    )
    return path


def load_result(path: str) -> ClusterResult:
    """Load a clustering result written by :func:`save_result`.

    Raises
    ------
    InvalidParameterError
        The file is missing, unreadable, or not a result archive (wrong or
        absent arrays, undecodable ``extra`` payload).
    """
    required = (
        "labels", "centroids", "has_centroids",
        "inertia", "n_iter", "converged", "extra",
    )
    with _load_archive_checked(path, required, "result") as archive:
        try:
            extra = json.loads(str(archive["extra"]))
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"{path} carries an undecodable result extra payload: {exc}"
            ) from exc
        has_centroids = bool(archive["has_centroids"])
        return ClusterResult(
            labels=archive["labels"],
            centroids=archive["centroids"] if has_centroids else None,
            inertia=float(archive["inertia"]),
            n_iter=int(archive["n_iter"]),
            converged=bool(archive["converged"]),
            extra=extra,
        )
