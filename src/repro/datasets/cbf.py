"""The Cylinder-Bell-Funnel dataset (Saito [71]; paper Appendix B).

CBF is the synthetic three-class benchmark the paper uses for its
scalability experiments (Figure 12) because both the number of sequences
``n`` and the length ``m`` can be varied freely without changing the
dataset's character. The three classes over positions ``i = 1..m`` are

* **cylinder**: ``c(i) = (6 + eta) * X_[a, b](i) + eps(i)``
* **bell**:     ``b(i) = (6 + eta) * X_[a, b](i) * (i - a)/(b - a) + eps(i)``
* **funnel**:   ``f(i) = (6 + eta) * X_[a, b](i) * (b - i)/(b - a) + eps(i)``

where ``X_[a, b]`` is the indicator of the event interval, ``a`` is drawn
uniformly from [16, 32] and ``b - a`` from [32, 96] (scaled proportionally
for lengths other than the original 128), and ``eta``, ``eps(i)`` are
standard normal draws.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import InvalidParameterError
from .base import Dataset

__all__ = ["cbf_instance", "make_cbf", "CBF_CLASSES"]

CBF_CLASSES = ("cylinder", "bell", "funnel")


def cbf_instance(kind: str, length: int = 128, rng=None) -> np.ndarray:
    """One CBF sequence of class ``kind`` (``"cylinder"``/``"bell"``/``"funnel"``)."""
    if kind not in CBF_CLASSES:
        raise InvalidParameterError(
            f"kind must be one of {CBF_CLASSES}, got {kind!r}"
        )
    length = check_positive_int(length, "length", minimum=8)
    generator = as_rng(rng)
    scale = length / 128.0
    a = generator.uniform(16.0, 32.0) * scale
    b = a + generator.uniform(32.0, 96.0) * scale
    b = min(b, length - 1.0)
    i = np.arange(length, dtype=np.float64)
    indicator = ((i >= a) & (i <= b)).astype(np.float64)
    eta = generator.normal()
    eps = generator.normal(size=length)
    span = max(b - a, 1.0)
    if kind == "cylinder":
        shape = indicator
    elif kind == "bell":
        shape = indicator * (i - a) / span
    else:  # funnel
        shape = indicator * (b - i) / span
    return (6.0 + eta) * shape + eps


def make_cbf(
    n_per_class: int = 30,
    length: int = 128,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """A CBF sample: ``(3 * n_per_class, length)`` sequences and labels 0/1/2."""
    check_positive_int(n_per_class, "n_per_class")
    generator = as_rng(rng)
    rows = []
    labels = []
    for label, kind in enumerate(CBF_CLASSES):
        for _ in range(n_per_class):
            rows.append(cbf_instance(kind, length=length, rng=generator))
            labels.append(label)
    return np.asarray(rows), np.asarray(labels)


def make_cbf_dataset(
    n_train_per_class: int = 10,
    n_test_per_class: int = 30,
    length: int = 128,
    seed: int = 0,
) -> Dataset:
    """CBF as a :class:`~repro.datasets.base.Dataset` with a train/test split."""
    generator = as_rng(seed)
    X_train, y_train = make_cbf(n_train_per_class, length, generator)
    X_test, y_test = make_cbf(n_test_per_class, length, generator)
    return Dataset.from_raw(
        "CBF",
        X_train,
        y_train,
        X_test,
        y_test,
        metadata={"family": "cbf", "seed": seed},
    )
