"""Loader for real UCR-archive files, when the user supplies them.

The UCR time-series collection [1] distributes each dataset as two text
files — ``<Name>_TRAIN`` and ``<Name>_TEST`` (newer releases use a
``.tsv`` suffix) — where every line is a sequence: the first field is the
class label and the remaining fields are the values, separated by commas
or whitespace.

The synthetic archive (:mod:`repro.datasets.archive`) is the default
substrate of this reproduction, but these loaders let every experiment run
on the genuine UCR data when it is available locally.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from ..exceptions import EmptyInputError, InvalidParameterError
from .base import Dataset

__all__ = ["read_ucr_file", "load_ucr_dataset"]


def read_ucr_file(path: str) -> Tuple[np.ndarray, np.ndarray]:
    """Parse one UCR text file into ``(X, y)``.

    Accepts comma- or whitespace-separated values; labels may be arbitrary
    numeric values (UCR uses e.g. ``-1/1`` or ``1..k``) and are returned
    as-is in an integer array when possible.
    """
    if not os.path.exists(path):
        raise InvalidParameterError(f"no such file: {path}")
    rows = []
    labels = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            labels.append(float(parts[0]))
            rows.append([float(v) for v in parts[1:]])
    if not rows:
        raise EmptyInputError(f"{path} contains no sequences")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise InvalidParameterError(
            f"{path} holds sequences of differing lengths: {sorted(lengths)}"
        )
    X = np.asarray(rows, dtype=np.float64)
    y = np.asarray(labels)
    if np.allclose(y, np.round(y)):
        y = y.astype(int)
    return X, y


def load_ucr_dataset(
    directory: str, name: str, znormalize: bool = True
) -> Dataset:
    """Load a UCR dataset from ``directory`` by its archive ``name``.

    Looks for ``<name>_TRAIN[.tsv|.txt]`` and ``<name>_TEST[.tsv|.txt]``
    under ``directory`` or ``directory/name``. Sequences are z-normalized
    by default — the paper does this for all datasets because several UCR
    datasets ship unnormalized (Section 4, footnote 5).
    """
    candidates = [directory, os.path.join(directory, name)]
    suffixes = ["", ".tsv", ".txt"]
    train_path = test_path = None
    for base in candidates:
        for suffix in suffixes:
            tr = os.path.join(base, f"{name}_TRAIN{suffix}")
            te = os.path.join(base, f"{name}_TEST{suffix}")
            if os.path.exists(tr) and os.path.exists(te):
                train_path, test_path = tr, te
                break
        if train_path:
            break
    if train_path is None:
        raise InvalidParameterError(
            f"could not find {name}_TRAIN/_TEST under {directory}"
        )
    X_train, y_train = read_ucr_file(train_path)
    X_test, y_test = read_ucr_file(test_path)
    return Dataset.from_raw(
        name,
        X_train,
        y_train,
        X_test,
        y_test,
        metadata={"family": "ucr", "source": directory},
        znormalize=znormalize,
    )
