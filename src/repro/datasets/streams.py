"""Replay a dataset as a batch stream (for mini-batch / streaming runs).

:class:`repro.core.minibatch.MiniBatchKShape` consumes batches via
``partial_fit``; this helper turns any sequence collection (or
:class:`~repro.datasets.base.Dataset`) into a seeded, optionally shuffled,
optionally repeating stream of ``(X_batch, y_batch)`` pairs — convenient
for experiments and demos that simulate live arrival.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .._validation import as_dataset, as_rng, check_positive_int
from ..exceptions import ShapeMismatchError

__all__ = ["replay_stream"]


def replay_stream(
    X,
    y=None,
    batch_size: int = 32,
    shuffle: bool = True,
    epochs: int = 1,
    rng=None,
) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield ``(X_batch, y_batch)`` pairs replaying a collection.

    Parameters
    ----------
    X:
        ``(n, m)`` collection (labels come along when ``y`` is given;
        otherwise ``y_batch`` is ``None``).
    batch_size:
        Sequences per batch; the final batch of an epoch may be smaller.
    shuffle:
        Reshuffle the order at the start of every epoch.
    epochs:
        Number of passes over the data.
    rng:
        Seed or Generator driving the shuffles.
    """
    data = as_dataset(X, "X")
    labels = None
    if y is not None:
        labels = np.asarray(y).ravel()
        if labels.shape[0] != data.shape[0]:
            raise ShapeMismatchError("y must have one label per sequence")
    check_positive_int(batch_size, "batch_size")
    check_positive_int(epochs, "epochs")
    generator = as_rng(rng)
    n = data.shape[0]
    for _ in range(epochs):
        order = generator.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            yield data[idx], (labels[idx] if labels is not None else None)
