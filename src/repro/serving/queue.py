"""Micro-batching request queue for single-series inference traffic.

Serving traffic arrives one series at a time, but every kernel in this
package is batched — one :func:`~repro.core._fft_batch.ncc_c_max_multi`
call over 32 queries costs far less than 32 calls over one. The
:class:`MicroBatchQueue` bridges the two: :meth:`~MicroBatchQueue.submit`
enqueues a single series and returns a future; a collector thread coalesces
waiting requests into one batched :class:`~repro.serving.ShapePredictor`
call under a **max-batch / max-latency** policy — a batch is flushed as
soon as it holds ``max_batch`` requests *or* its oldest request has waited
``max_latency_s`` seconds, whichever comes first.

Because the predictor's batched and per-series answers are exactly equal,
coalescing never changes a response — it only changes throughput. Per-request
latency and per-batch occupancy counters accumulate into a
:class:`ServingStats` snapshot for dashboards and the serving benchmark.

For deterministic tests (and single-threaded callers), construct with
``autostart=False`` and drive the queue manually with
:meth:`~MicroBatchQueue.flush`.
"""

from __future__ import annotations

import queue as _queue
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Deque, List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from .._validation import as_series, check_positive_int
from ..exceptions import InvalidParameterError, QueueClosedError
from .predictor import ShapePredictor

__all__ = [
    "ServingStats",
    "MicroBatchQueue",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_LATENCY_S",
]

#: Rolling reservoir size the latency percentiles are computed over. Large
#: enough that p99 rests on ~40 samples, small enough that a snapshot copy
#: is cheap under the queue's lock.
LATENCY_RESERVOIR = 4096

#: Static fallback batching policy, used when no measured
#: :class:`repro.tuning.HardwareProfile` is active. A calibrated profile
#: replaces these with values derived from this machine's batched-kernel
#: cost curve (``max_batch`` never below, ``max_latency_s`` never above,
#: these defaults — calibration can only tighten the policy).
DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_LATENCY_S = 0.01


@dataclass
class ServingStats:
    """Cumulative serving counters (one snapshot is one point in time).

    Attributes
    ----------
    requests:
        Series submitted.
    completed:
        Series answered.
    batches:
        Kernel invocations performed.
    rejected:
        Series whose futures were failed with
        :class:`~repro.exceptions.QueueClosedError` by a
        ``close(drain=False)`` shutdown.
    batch_occupancy:
        Series summed over all batches (``completed`` counted at flush
        time); ``mean_batch_size`` derives from it.
    max_batch_size:
        Largest batch flushed so far.
    total_latency_s / max_latency_s:
        Submit-to-resolve wall-clock, summed / worst-case.
    kernel_s:
        Time spent inside the batched predictor calls.
    queue_depth:
        Requests submitted but not yet resolved (gauge, not cumulative).
    max_queue_depth:
        High-water mark of ``queue_depth``.
    recent_latencies:
        Rolling reservoir of the last :data:`LATENCY_RESERVOIR`
        per-request latencies; ``p50_latency_s`` / ``p99_latency_s``
        derive from it.
    """

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    batches: int = 0
    batch_occupancy: int = 0
    max_batch_size: int = 0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    kernel_s: float = 0.0
    queue_depth: int = 0
    max_queue_depth: int = 0
    recent_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_RESERVOIR),
        repr=False,
        compare=False,
    )

    @property
    def mean_batch_size(self) -> float:
        return self.batch_occupancy / self.batches if self.batches else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    @property
    def throughput(self) -> float:
        """Completed series per second of kernel time."""
        return self.completed / self.kernel_s if self.kernel_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency percentile (``0 <= q <= 100``) over the rolling reservoir."""
        if not self.recent_latencies:
            return 0.0
        samples = np.fromiter(self.recent_latencies, dtype=np.float64)
        return float(np.percentile(samples, q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    def as_dict(self) -> dict:
        """Counters plus derived rates, ready for JSON reports.

        The raw latency reservoir is summarized (p50/p99), not emitted.
        """
        out = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "recent_latencies"
        }
        out["mean_batch_size"] = self.mean_batch_size
        out["mean_latency_s"] = self.mean_latency_s
        out["p50_latency_s"] = self.p50_latency_s
        out["p99_latency_s"] = self.p99_latency_s
        out["throughput"] = self.throughput
        return out


@dataclass
class _Request:
    series: np.ndarray
    future: Future
    submitted: float = field(default_factory=monotonic)


class MicroBatchQueue:
    """Coalesce single-series requests into batched predictor calls.

    Parameters
    ----------
    predictor:
        A :class:`~repro.serving.ShapePredictor` (or anything exposing
        ``predict_full(X) -> Prediction`` and an ``m`` attribute).
    max_batch:
        Flush as soon as this many requests are waiting. ``None`` (the
        default) takes the active hardware profile's measured value, or
        :data:`DEFAULT_MAX_BATCH` when no profile is active.
    max_latency_s:
        Flush once the oldest waiting request has aged this long, even if
        the batch is not full. ``None`` (the default) takes the active
        hardware profile's measured value, or
        :data:`DEFAULT_MAX_LATENCY_S` when no profile is active.
    autostart:
        Start the collector thread immediately. ``False`` leaves the queue
        passive: requests buffer until an explicit :meth:`flush` — the
        deterministic mode tests and synchronous callers use.

    Notes
    -----
    Each future resolves to a ``(label, distance)`` pair. The queue is a
    context manager; leaving the ``with`` block drains outstanding
    requests and stops the collector.
    """

    def __init__(
        self,
        predictor: ShapePredictor,
        max_batch: Optional[int] = None,
        max_latency_s: Optional[float] = None,
        autostart: bool = True,
    ) -> None:
        if max_batch is None or max_latency_s is None:
            from ..tuning.profile import get_active_profile

            profile = get_active_profile()
            if max_batch is None:
                max_batch = (
                    profile.serving_max_batch
                    if profile is not None
                    else DEFAULT_MAX_BATCH
                )
            if max_latency_s is None:
                max_latency_s = (
                    profile.serving_max_latency_s
                    if profile is not None
                    else DEFAULT_MAX_LATENCY_S
                )
        self.predictor = predictor
        self.max_batch = check_positive_int(max_batch, "max_batch")
        if max_latency_s <= 0:
            raise InvalidParameterError(
                f"max_latency_s must be > 0, got {max_latency_s}"
            )
        self.max_latency_s = float(max_latency_s)
        self._inbox: "_queue.Queue[Optional[_Request]]" = _queue.Queue()
        self._lock = threading.Lock()
        self._stats = ServingStats()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self._thread = threading.Thread(
                target=self._collector, name="repro-serving-queue", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, x: ArrayLike) -> Future:
        """Enqueue one series; the future resolves to ``(label, distance)``.

        Raises :class:`~repro.exceptions.QueueClosedError` once the queue
        has been closed — a late submit can never be silently dropped.
        """
        series = as_series(x, "x")
        request = _Request(series=series, future=Future())
        # The closed check and the enqueue share the lock with close(), so
        # no request can slip into the inbox after close() swept it.
        with self._lock:
            if self._closed:
                raise QueueClosedError("queue is closed")
            self._stats.requests += 1
            self._stats.queue_depth += 1
            self._stats.max_queue_depth = max(
                self._stats.max_queue_depth, self._stats.queue_depth
            )
            self._inbox.put(request)
        return request.future

    def predict(self, x: ArrayLike) -> Tuple[int, float]:
        """Blocking single-series convenience: submit and wait.

        With no collector thread (``autostart=False``) the waiting batch is
        flushed synchronously instead of blocking forever.
        """
        future = self.submit(x)
        if self._thread is None:
            self.flush()
        return future.result()

    def stats(self) -> ServingStats:
        """A consistent snapshot of the cumulative counters."""
        with self._lock:
            values = {
                name: getattr(self._stats, name)
                for name in ServingStats.__dataclass_fields__
            }
            # The reservoir is mutable — snapshot a copy, not the live deque.
            values["recent_latencies"] = deque(
                self._stats.recent_latencies, maxlen=LATENCY_RESERVOIR
            )
            return ServingStats(**values)

    # ------------------------------------------------------------------
    def _drain_waiting(self, limit: int) -> List[_Request]:
        """Non-blocking: pop up to ``limit`` requests already waiting."""
        batch: List[_Request] = []
        while len(batch) < limit:
            try:
                item = self._inbox.get_nowait()
            except _queue.Empty:
                break
            if item is not None:
                batch.append(item)
        return batch

    def flush(self) -> int:
        """Synchronously answer every waiting request; returns the count.

        Requests are processed in arrival order, in batches of at most
        ``max_batch`` (so occupancy statistics match the collector's).
        """
        total = 0
        while True:
            batch = self._drain_waiting(self.max_batch)
            if not batch:
                return total
            self._process(batch)
            total += len(batch)

    def _process(self, batch: List[_Request]) -> None:
        X = np.stack([r.series for r in batch])
        before = getattr(self.predictor, "kernel_seconds", 0.0)
        try:
            prediction = self.predictor.predict_full(X)
        except Exception as exc:  # resolve, don't wedge the callers
            for request in batch:
                request.future.set_exception(exc)
            with self._lock:
                # Failed requests still leave the queue.
                self._stats.queue_depth -= len(batch)
            return
        kernel = getattr(self.predictor, "kernel_seconds", 0.0) - before
        now = monotonic()
        with self._lock:
            stats = self._stats
            stats.batches += 1
            stats.batch_occupancy += len(batch)
            stats.max_batch_size = max(stats.max_batch_size, len(batch))
            stats.kernel_s += kernel
            stats.queue_depth -= len(batch)
            for request in batch:
                latency = now - request.submitted
                stats.completed += 1
                stats.total_latency_s += latency
                stats.max_latency_s = max(stats.max_latency_s, latency)
                stats.recent_latencies.append(latency)
        for i, request in enumerate(batch):
            request.future.set_result(
                (int(prediction.labels[i]), float(prediction.distances[i]))
            )

    def _collector(self) -> None:
        while True:
            try:
                first = self._inbox.get(timeout=0.05)
            except _queue.Empty:
                if self._closed:
                    return
                continue
            if first is None:  # shutdown sentinel
                return
            batch = [first]
            deadline = first.submitted + self.max_latency_s
            while len(batch) < self.max_batch:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._inbox.get(timeout=remaining)
                except _queue.Empty:
                    break
                if item is None:
                    self._process(batch)
                    return
                batch.append(item)
            self._process(batch)

    def _reject_waiting(self) -> int:
        """Fail every waiting request with ``QueueClosedError``."""
        rejected = 0
        while True:
            batch = self._drain_waiting(self.max_batch)
            if not batch:
                break
            for request in batch:
                request.future.set_exception(
                    QueueClosedError("queue closed before this request ran")
                )
            with self._lock:
                self._stats.rejected += len(batch)
                self._stats.queue_depth -= len(batch)
            rejected += len(batch)
        return rejected

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and stop the collector.

        Parameters
        ----------
        drain:
            ``True`` (default) answers every waiting request before
            returning — the graceful path hot swaps rely on, so a response
            is never lost. ``False`` fails the backlog's futures with
            :class:`~repro.exceptions.QueueClosedError` instead (emergency
            teardown); either way no future is left unresolved.

        Subsequent :meth:`submit` calls raise
        :class:`~repro.exceptions.QueueClosedError`. Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._thread is not None:
            self._inbox.put(None)
            self._thread.join()
            self._thread = None
        if drain:
            self.flush()  # anything the collector left behind
        else:
            self._reject_waiting()

    def __enter__(self) -> "MicroBatchQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
