"""Sharded multi-model serving with hot swap and drift-triggered refits.

This module composes every piece the serving story built so far into one
production-shaped layer, :class:`ShapeFleet`:

* a :class:`~repro.serving.registry.ModelRegistry` is the source of
  model versions (checksummed artifacts, pin/retire, atomic publishes);
* a :class:`~repro.serving.router.ShardRouter` splits traffic by key
  across ``n_shards`` shards with consistent hashing, so resizing the
  fleet moves ~1/N of the keys, not all of them;
* each shard owns its *own* :class:`~repro.serving.ShapePredictor`
  (optionally routing through a :class:`~repro.search.CentroidIndex`)
  and :class:`~repro.serving.MicroBatchQueue` under the
  profile-calibrated per-shard policy
  (:meth:`repro.tuning.HardwareProfile.serving_policy`), so latency
  percentiles and queue depth are observable per shard and roll up into
  :class:`FleetStats`;
* one :class:`~repro.serving.CentroidMaintainer` watches the traffic the
  fleet labels and arms the closed drift loop.

**Hot swap** (:meth:`ShapeFleet.swap_to`) is loss-free and exact by
construction: the candidate is loaded and smoke-tested while the
incumbent keeps serving; then, shard by shard, the old queue is closed
with ``drain=True`` — every request submitted before the switch is
answered by the *old* predictor, bit-identical to the owning artifact's
``ShapePredictor.predict`` — and the shard atomically flips to a fresh
predictor + queue (a per-shard lock serializes the flip against
``submit``, so a request lands in exactly one of the two queues and is
answered either way). A candidate that fails its checksum, schema, or
smoke prediction rolls back before any shard is touched.

**Staged promotion** (:meth:`ShapeFleet.promote`) shadows a stable,
hash-selected fraction of traffic onto the candidate and compares it
against the incumbent: hard-assignment disagreement, Fuzzy c-Shape-style
soft-membership divergence (a graded signal — two models can disagree on
a boundary series while their membership rows stay close), and the
mean-nearest-distance ratio (the fitness gate: a drift refit is
*expected* to disagree with the stale incumbent, but it must fit the
canary traffic at least as tightly). Pass → fleet-wide swap; fail →
rollback, incumbent untouched.

**Closed drift loop** (:meth:`ShapeFleet.run_drift_cycle`): the
maintainer's :class:`~repro.serving.DriftReport` fires → a
:class:`~repro.core.minibatch.MiniBatchKShape` refit warm-started from
the maintainer's centroids and reservoirs
(:meth:`~repro.core.minibatch.MiniBatchKShape.from_state`) folds in the
recent traffic → the refit is published to the registry → staged
promotion decides swap or rollback → on swap the maintainer's reservoirs
and drift windows reset (:meth:`~repro.serving.CentroidMaintainer.
reset_after_swap`) so the next cycle measures the new version, not the
old one's ghost.

The promotion state machine::

    IDLE --publish/refit--> CANDIDATE --load+smoke ok--> CANARY
    CANDIDATE --checksum/schema/smoke failure--> ROLLED_BACK (incumbent serves)
    CANARY --gates pass--> SWAPPING --per-shard drain+flip--> PROMOTED
    CANARY --gates fail--> ROLLED_BACK (incumbent serves)

Everything is synchronous and deterministic under ``autostart=False``
(the mode the tests and benchmarks drive); ``run_drift_cycle_async``
moves the whole refit-and-promote cycle onto a background thread while
the fleet keeps serving.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np
from numpy.typing import ArrayLike

from .._validation import as_dataset
from ..core.minibatch import MiniBatchKShape
from ..exceptions import ArtifactError, InvalidParameterError, ShapeMismatchError
from ..search.index import IndexStats
from .maintenance import CentroidMaintainer, DriftReport
from .predictor import ShapePredictor
from .queue import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LATENCY_S,
    MicroBatchQueue,
    ServingStats,
)
from .registry import ModelRegistry
from .router import DEFAULT_REPLICAS, Key, ShardRouter

__all__ = [
    "FleetStats",
    "SwapReport",
    "PromotionReport",
    "DriftCycleReport",
    "ShapeFleet",
]

#: Promotion / swap outcomes (the state machine's terminal states).
OUTCOME_SWAPPED = "swapped"
OUTCOME_PROMOTED = "promoted"
OUTCOME_ROLLED_BACK = "rolled_back"


def _merge_serving_stats(into: ServingStats, other: ServingStats) -> None:
    """Fold ``other``'s counters into ``into`` (sums, maxes, reservoirs)."""
    into.requests += other.requests
    into.completed += other.completed
    into.rejected += other.rejected
    into.batches += other.batches
    into.batch_occupancy += other.batch_occupancy
    into.max_batch_size = max(into.max_batch_size, other.max_batch_size)
    into.total_latency_s += other.total_latency_s
    into.max_latency_s = max(into.max_latency_s, other.max_latency_s)
    into.kernel_s += other.kernel_s
    into.queue_depth += other.queue_depth
    into.max_queue_depth = max(into.max_queue_depth, other.max_queue_depth)
    into.recent_latencies.extend(other.recent_latencies)


@dataclass
class SwapReport:
    """Outcome of one hot-swap attempt.

    ``outcome`` is :data:`OUTCOME_SWAPPED` or :data:`OUTCOME_ROLLED_BACK`
    (the incumbent kept serving; ``reason`` says why). ``pause_s`` holds
    each shard's intake pause — the drain-and-flip window during which
    that shard's submitters waited on its lock; requests are never
    dropped, only briefly delayed.
    """

    version_from: str
    version_to: str
    outcome: str
    reason: str = ""
    pause_s: Dict[str, float] = field(default_factory=dict)
    drained: Dict[str, int] = field(default_factory=dict)

    @property
    def max_pause_s(self) -> float:
        return max(self.pause_s.values()) if self.pause_s else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version_from": self.version_from,
            "version_to": self.version_to,
            "outcome": self.outcome,
            "reason": self.reason,
            "pause_s": dict(self.pause_s),
            "drained": dict(self.drained),
            "max_pause_s": self.max_pause_s,
        }


@dataclass
class PromotionReport:
    """Outcome of a staged canary promotion.

    ``disagreement_rate`` (label flips) and ``soft_divergence`` (mean
    total-variation distance between the incumbent's and candidate's
    fuzzy membership rows) are comparable only when both versions share a
    cluster count — otherwise they are ``None`` and the decision rests on
    ``distance_ratio`` (candidate's mean nearest distance over the
    incumbent's on canary traffic; < 1 means the candidate fits the
    current traffic tighter).
    """

    incumbent: str
    candidate: str
    outcome: str
    reason: str = ""
    canary_fraction: float = 0.0
    n_canary: int = 0
    n_traffic: int = 0
    distance_ratio: Optional[float] = None
    disagreement_rate: Optional[float] = None
    soft_divergence: Optional[float] = None
    swap: Optional[SwapReport] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "incumbent": self.incumbent,
            "candidate": self.candidate,
            "outcome": self.outcome,
            "reason": self.reason,
            "canary_fraction": self.canary_fraction,
            "n_canary": self.n_canary,
            "n_traffic": self.n_traffic,
            "distance_ratio": self.distance_ratio,
            "disagreement_rate": self.disagreement_rate,
            "soft_divergence": self.soft_divergence,
            "swap": None if self.swap is None else self.swap.as_dict(),
        }


@dataclass
class DriftCycleReport:
    """One turn of the closed drift loop."""

    drift: DriftReport
    refit_version: Optional[str] = None
    promotion: Optional[PromotionReport] = None

    @property
    def swapped(self) -> bool:
        return (
            self.promotion is not None
            and self.promotion.outcome == OUTCOME_PROMOTED
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "drift": self.drift.as_dict(),
            "refit_version": self.refit_version,
            "promotion": (
                None if self.promotion is None else self.promotion.as_dict()
            ),
            "swapped": self.swapped,
        }


@dataclass
class FleetStats:
    """Fleet-level rollup of per-shard serving statistics.

    ``per_shard`` holds each live queue's :class:`ServingStats` snapshot;
    ``retired`` accumulates the counters of queues closed by past swaps,
    so fleet totals are monotone across version changes. The fleet
    latency percentiles are computed over the union of every reservoir.
    """

    version: str
    n_shards: int
    swaps: int = 0
    rollbacks: int = 0
    swap_pauses_s: List[float] = field(default_factory=list)
    per_shard: Dict[str, ServingStats] = field(default_factory=dict)
    retired: ServingStats = field(default_factory=ServingStats)
    index: Optional[IndexStats] = None

    def _all_stats(self) -> List[ServingStats]:
        return [*self.per_shard.values(), self.retired]

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self._all_stats())

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self._all_stats())

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self._all_stats())

    @property
    def queue_depth(self) -> int:
        return sum(s.queue_depth for s in self.per_shard.values())

    @property
    def max_queue_depth(self) -> int:
        values = [s.max_queue_depth for s in self._all_stats()]
        return max(values) if values else 0

    def latency_percentile(self, q: float) -> float:
        samples: List[float] = []
        for stats in self._all_stats():
            samples.extend(stats.recent_latencies)
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples, dtype=np.float64), q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    def swap_pause_percentile(self, q: float) -> float:
        if not self.swap_pauses_s:
            return 0.0
        return float(
            np.percentile(np.asarray(self.swap_pauses_s, dtype=np.float64), q)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "n_shards": self.n_shards,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "swap_pause_p99_s": self.swap_pause_percentile(99.0),
            "swap_pause_max_s": (
                max(self.swap_pauses_s) if self.swap_pauses_s else 0.0
            ),
            "fleet": {
                "requests": self.requests,
                "completed": self.completed,
                "rejected": self.rejected,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "p50_latency_s": self.p50_latency_s,
                "p99_latency_s": self.p99_latency_s,
            },
            "per_shard": {
                name: stats.as_dict()
                for name, stats in sorted(self.per_shard.items())
            },
            "index": None if self.index is None else self.index.as_dict(),
        }


class _Shard:
    """One shard's live serving state (predictor + queue + flip lock)."""

    def __init__(
        self, name: str, predictor: ShapePredictor, queue: MicroBatchQueue
    ) -> None:
        self.name = name
        self.predictor = predictor
        self.queue = queue
        self.lock = threading.Lock()


class ShapeFleet:
    """Consistent-hash-sharded serving over registry-published models.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry` (or its root
        path) holding at least one active version.
    n_shards:
        Shards to serve from; each owns an independent predictor and
        micro-batch queue.
    version:
        Version to serve initially; defaults to the registry's
        :meth:`~repro.serving.registry.ModelRegistry.resolve` (pinned,
        else latest active).
    index:
        ``None`` / ``"exact"`` / ``"approx"`` — per-shard
        :class:`~repro.search.CentroidIndex` routing, rebuilt over the
        new centroids on every swap (the index handoff).
    max_batch / max_latency_s:
        Per-shard queue policy. ``None`` resolves the active
        :class:`~repro.tuning.HardwareProfile`'s
        :meth:`~repro.tuning.HardwareProfile.serving_policy` for this
        shard count, else the static defaults.
    autostart:
        Passed to every shard queue. ``False`` (default) keeps the fleet
        fully deterministic: requests buffer until :meth:`flush` (or a
        blocking :meth:`predict`).
    replicas / seed:
        Consistent-hash ring shape (see
        :class:`~repro.serving.router.ShardRouter`).
    maintainer:
        Keyword arguments for the fleet's
        :class:`~repro.serving.CentroidMaintainer` (``None`` uses its
        defaults).
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str],
        n_shards: int = 2,
        version: Optional[str] = None,
        index: Optional[str] = None,
        max_batch: Optional[int] = None,
        max_latency_s: Optional[float] = None,
        autostart: bool = False,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
        maintainer: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        if n_shards < 1:
            raise InvalidParameterError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        self.n_shards = int(n_shards)
        self.index_mode = index
        self.autostart = bool(autostart)
        if max_batch is None or max_latency_s is None:
            from ..tuning.profile import get_active_profile

            profile = get_active_profile()
            if profile is not None:
                policy = profile.serving_policy(self.n_shards)
                if max_batch is None:
                    max_batch = int(policy["max_batch"])
                if max_latency_s is None:
                    max_latency_s = float(policy["max_latency_s"])
            else:
                if max_batch is None:
                    max_batch = DEFAULT_MAX_BATCH
                if max_latency_s is None:
                    max_latency_s = DEFAULT_MAX_LATENCY_S
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)

        self.version_ = version if version is not None else registry.resolve()
        self._model = registry.load(self.version_)
        names = [f"shard-{i:02d}" for i in range(self.n_shards)]
        self.router = ShardRouter(names, replicas=replicas, seed=seed)
        self._shards: Dict[str, _Shard] = {
            name: self._build_shard(name, self._model) for name in names
        }
        self._maintainer_kwargs = dict(maintainer or {})
        self.maintainer = CentroidMaintainer.from_model(
            self._model, **self._maintainer_kwargs
        )
        self.swaps_ = 0
        self.rollbacks_ = 0
        self._swap_pauses_s: List[float] = []
        self._retired = ServingStats()
        self._closed = False

    # ----------------------------------------------------------- plumbing
    def _make_predictor(self, model: object) -> ShapePredictor:
        return ShapePredictor.from_model(model, index=self.index_mode)

    def _build_shard(self, name: str, model: object) -> _Shard:
        predictor = self._make_predictor(model)
        queue = MicroBatchQueue(
            predictor,
            max_batch=self.max_batch,
            max_latency_s=self.max_latency_s,
            autostart=self.autostart,
        )
        return _Shard(name, predictor, queue)

    def shard_of(self, key: Key) -> str:
        """The shard currently owning ``key``."""
        return self.router.route(key)

    @property
    def shards(self) -> List[str]:
        return self.router.shards

    # ------------------------------------------------------------ serving
    def submit(self, key: Key, x: ArrayLike) -> Future:
        """Route one series to its shard's queue; returns the future."""
        shard = self._shards[self.router.route(key)]
        with shard.lock:
            return shard.queue.submit(x)

    def predict(self, key: Key, x: ArrayLike) -> tuple:
        """Blocking single-series convenience: submit, flush if passive,
        wait. Returns the ``(label, distance)`` pair."""
        shard = self._shards[self.router.route(key)]
        with shard.lock:
            future = shard.queue.submit(x)
            queue = shard.queue
        if queue._thread is None:
            queue.flush()
        return future.result()

    def flush(self) -> int:
        """Synchronously answer every waiting request on every shard."""
        total = 0
        for shard in self._shards.values():
            with shard.lock:
                queue = shard.queue
            total += queue.flush()
        return total

    # ------------------------------------------------------------- stats
    def stats(self) -> FleetStats:
        """A consistent fleet-level snapshot (live shards + retired queues)."""
        retired = ServingStats()
        _merge_serving_stats(retired, self._retired)
        merged_index: Optional[IndexStats] = None
        per_shard: Dict[str, ServingStats] = {}
        for name, shard in self._shards.items():
            per_shard[name] = shard.queue.stats()
            shard_index = shard.predictor.index_stats
            if shard_index is not None:
                # merge() mutates its receiver, so accumulate into a fresh
                # IndexStats — never into a live shard's counters.
                if merged_index is None:
                    merged_index = IndexStats()
                merged_index.merge(shard_index)
        return FleetStats(
            version=self.version_,
            n_shards=self.n_shards,
            swaps=self.swaps_,
            rollbacks=self.rollbacks_,
            swap_pauses_s=list(self._swap_pauses_s),
            per_shard=per_shard,
            retired=retired,
            index=merged_index,
        )

    # ----------------------------------------------------------- hot swap
    def _smoke_failure(self, model: object) -> Optional[str]:
        """Reason the candidate must not serve, or ``None`` if it may.

        The probe predicts the candidate's own centroids through a fresh
        predictor — the cheapest query guaranteed to be in-distribution —
        and requires finite distances of the right shape.
        """
        centroids = getattr(model, "centroids_", None)
        if centroids is None:
            return "candidate exposes no centroids to serve from"
        try:
            probe = np.asarray(centroids, dtype=np.float64)
            if probe.ndim != 2 or not np.all(np.isfinite(probe)):
                return "candidate centroids are not a finite (k, m) matrix"
            prediction = self._make_predictor(model).predict_full(probe)
            if prediction.labels.shape[0] != probe.shape[0] or not np.all(
                np.isfinite(prediction.distances)
            ):
                return "smoke prediction returned malformed or non-finite answers"
        except Exception as exc:  # any failure here must veto the swap
            return f"smoke prediction failed: {exc!r}"
        return None

    def _load_candidate(
        self, version: str, preloaded: Optional[object]
    ) -> tuple:
        """(model, None) on success, (None, reason) on a rollback cause."""
        model = preloaded
        if model is None:
            try:
                model = self.registry.load(version)
            except ArtifactError as exc:
                return None, f"candidate failed verification: {exc}"
        reason = self._smoke_failure(model)
        if reason is not None:
            return None, reason
        return model, None

    def swap_to(
        self, version: str, _model: Optional[object] = None
    ) -> SwapReport:
        """Hot-swap every shard to ``version``; loss-free and exact.

        The candidate loads and smoke-tests while the incumbent keeps
        serving; a checksum/schema/smoke failure rolls back with no shard
        touched. Then each shard, under its flip lock, drains its queue
        (pending requests are answered by the *incumbent*, bit-identical
        to its artifact's predictor) and atomically switches to a fresh
        predictor + queue over the new version. The maintainer resets so
        drift statistics never straddle a version change.
        """
        incumbent = self.version_
        model, failure = self._load_candidate(version, _model)
        if failure is not None:
            self.rollbacks_ += 1
            return SwapReport(
                version_from=incumbent,
                version_to=version,
                outcome=OUTCOME_ROLLED_BACK,
                reason=failure,
            )
        pauses: Dict[str, float] = {}
        drained: Dict[str, int] = {}
        for name in sorted(self._shards):
            shard = self._shards[name]
            new_predictor = self._make_predictor(model)
            new_queue = MicroBatchQueue(
                new_predictor,
                max_batch=self.max_batch,
                max_latency_s=self.max_latency_s,
                autostart=self.autostart,
            )
            tick = perf_counter()
            with shard.lock:
                old_queue = shard.queue
                backlog = old_queue.stats().queue_depth
                old_queue.close(drain=True)
                shard.predictor = new_predictor
                shard.queue = new_queue
            pauses[name] = perf_counter() - tick
            drained[name] = backlog
            _merge_serving_stats(self._retired, old_queue.stats())
        self._model = model
        self.version_ = version
        self.maintainer.reset_after_swap(getattr(model, "centroids_"))
        self.swaps_ += 1
        self._swap_pauses_s.extend(pauses.values())
        return SwapReport(
            version_from=incumbent,
            version_to=version,
            outcome=OUTCOME_SWAPPED,
            pause_s=pauses,
            drained=drained,
        )

    # ---------------------------------------------------------- promotion
    def canary_mask(
        self, keys: Sequence[Key], fraction: float
    ) -> np.ndarray:
        """Deterministic, key-stable canary selector.

        A key is canary traffic iff its hash position on the unit circle
        falls below ``fraction`` — the same key is always (or never) a
        canary for a given router seed, so repeated promotions compare on
        a consistent traffic slice.
        """
        if not 0.0 < fraction <= 1.0:
            raise InvalidParameterError(
                f"canary fraction must be in (0, 1], got {fraction}"
            )
        return np.array(
            [self.router.key_position(key) < fraction for key in keys],
            dtype=bool,
        )

    def promote(
        self,
        version: str,
        keys: Sequence[Key],
        X: ArrayLike,
        canary_fraction: float = 0.25,
        max_distance_regression: float = 0.05,
        max_disagreement: Optional[float] = None,
        max_soft_divergence: Optional[float] = None,
    ) -> PromotionReport:
        """Staged canary promotion of ``version`` against the incumbent.

        ``keys``/``X`` are the recent traffic sample to judge on; the
        hash-stable ``canary_fraction`` slice of it is scored by both
        versions (shadow comparison — the live fleet keeps serving the
        incumbent's answers throughout). The candidate is promoted and
        swapped in iff its mean nearest distance on the canary slice does
        not regress by more than ``max_distance_regression`` (relative),
        and the optional ``max_disagreement`` / ``max_soft_divergence``
        gates (comparable versions only) hold. Any failure — including a
        corrupted candidate — rolls back with the incumbent untouched.
        """
        incumbent = self.version_
        data = as_dataset(X, "X")
        if len(keys) != data.shape[0]:
            raise ShapeMismatchError(
                f"got {len(keys)} keys for {data.shape[0]} series"
            )

        def rollback(reason: str) -> PromotionReport:
            self.rollbacks_ += 1
            return PromotionReport(
                incumbent=incumbent,
                candidate=version,
                outcome=OUTCOME_ROLLED_BACK,
                reason=reason,
                canary_fraction=canary_fraction,
                n_traffic=data.shape[0],
            )

        model, failure = self._load_candidate(version, None)
        if failure is not None:
            return rollback(failure)
        mask = self.canary_mask(keys, canary_fraction)
        n_canary = int(mask.sum())
        if n_canary == 0:
            return rollback(
                f"canary fraction {canary_fraction} selected none of the "
                f"{data.shape[0]} traffic keys"
            )
        canary = data[mask]
        incumbent_pred = self._make_predictor(self._model)
        candidate_pred = self._make_predictor(model)
        base = incumbent_pred.predict_full(canary, soft=True)
        cand = candidate_pred.predict_full(canary, soft=True)

        base_mean = float(np.mean(base.distances))
        cand_mean = float(np.mean(cand.distances))
        if base_mean <= 1e-12:
            ratio = 1.0 if cand_mean <= 1e-12 else float("inf")
        else:
            ratio = cand_mean / base_mean

        comparable = (
            getattr(self._model, "centroids_").shape
            == getattr(model, "centroids_").shape
        )
        disagreement: Optional[float] = None
        divergence: Optional[float] = None
        if comparable:
            disagreement = float(np.mean(base.labels != cand.labels))
            if base.memberships is not None and cand.memberships is not None:
                divergence = float(
                    0.5
                    * np.mean(
                        np.abs(base.memberships - cand.memberships).sum(axis=1)
                    )
                )

        report = PromotionReport(
            incumbent=incumbent,
            candidate=version,
            outcome=OUTCOME_ROLLED_BACK,
            canary_fraction=canary_fraction,
            n_canary=n_canary,
            n_traffic=data.shape[0],
            distance_ratio=ratio,
            disagreement_rate=disagreement,
            soft_divergence=divergence,
        )
        if ratio > 1.0 + max_distance_regression:
            self.rollbacks_ += 1
            report.reason = (
                f"canary mean distance regressed {ratio:.4f}x "
                f"(allowed {1.0 + max_distance_regression:.4f}x)"
            )
            return report
        if max_disagreement is not None and (
            disagreement is None or disagreement > max_disagreement
        ):
            self.rollbacks_ += 1
            report.reason = (
                f"assignment disagreement {disagreement!r} exceeds "
                f"{max_disagreement}"
            )
            return report
        if max_soft_divergence is not None and (
            divergence is None or divergence > max_soft_divergence
        ):
            self.rollbacks_ += 1
            report.reason = (
                f"soft-membership divergence {divergence!r} exceeds "
                f"{max_soft_divergence}"
            )
            return report

        swap = self.swap_to(version, _model=model)
        report.swap = swap
        if swap.outcome == OUTCOME_SWAPPED:
            report.outcome = OUTCOME_PROMOTED
        else:
            report.reason = f"swap failed: {swap.reason}"
        return report

    # ---------------------------------------------------------- drift loop
    def observe(
        self,
        keys: Sequence[Key],
        X: ArrayLike,
        labels: Optional[ArrayLike] = None,
        update: bool = True,
    ) -> np.ndarray:
        """Feed labeled fleet traffic to the drift maintainer.

        ``update=True`` folds the batch into the maintained (shadow)
        centroids and reservoirs — the state a drift refit warm-starts
        from; ``update=False`` only records drift observations. Served
        predictions are never affected. ``keys`` are accepted for call-site
        symmetry with :meth:`submit` (drift is a model-level property, so
        observations are not sharded).
        """
        data = as_dataset(X, "X")
        if len(keys) != data.shape[0]:
            raise ShapeMismatchError(
                f"got {len(keys)} keys for {data.shape[0]} series"
            )
        if update:
            return self.maintainer.update(data, labels)
        return self.maintainer.observe(data)

    def check_drift(self) -> DriftReport:
        """The maintainer's current drift verdict."""
        return self.maintainer.check_drift()

    def run_drift_cycle(
        self,
        keys: Sequence[Key],
        X: ArrayLike,
        version: Optional[str] = None,
        refit_passes: int = 2,
        refit_params: Optional[Dict[str, Any]] = None,
        **promote_kwargs: Any,
    ) -> DriftCycleReport:
        """One synchronous turn of the closed drift loop.

        No drift → nothing happens. Drift → a
        :class:`~repro.core.minibatch.MiniBatchKShape` warm-started from
        the maintainer's centroids and reservoirs folds ``X`` in
        (``refit_passes`` passes of ``partial_fit`` batches), the refit
        is published to the registry, and :meth:`promote` decides between
        fleet-wide swap and rollback. ``keys``/``X`` double as the canary
        traffic sample.
        """
        drift = self.check_drift()
        if not drift.drifted:
            return DriftCycleReport(drift=drift)
        data = as_dataset(X, "X")
        if len(keys) != data.shape[0]:
            raise ShapeMismatchError(
                f"got {len(keys)} keys for {data.shape[0]} series"
            )
        params = dict(refit_params or {})
        params.setdefault("reservoir_size", self.maintainer.reservoir_size)
        refit = MiniBatchKShape.from_state(
            self.maintainer.centroids_,
            self.maintainer._reservoirs,
            **params,
        )
        for _ in range(max(int(refit_passes), 1)):
            for start in range(0, data.shape[0], refit.batch_size):
                refit.partial_fit(data[start : start + refit.batch_size])
        published = self.registry.publish(refit, version=version)
        promotion = self.promote(published, keys, data, **promote_kwargs)
        return DriftCycleReport(
            drift=drift, refit_version=published, promotion=promotion
        )

    def run_drift_cycle_async(
        self,
        keys: Sequence[Key],
        X: ArrayLike,
        **kwargs: Any,
    ) -> "Future[DriftCycleReport]":
        """Run :meth:`run_drift_cycle` on a background thread.

        The fleet keeps serving while the refit trains; the returned
        future resolves to the :class:`DriftCycleReport`. The registry
        publish and the shard flips happen on the background thread —
        safe because submits synchronize on each shard's flip lock.
        """
        keys = list(keys)
        data = as_dataset(X, "X").copy()
        future: "Future[DriftCycleReport]" = Future()

        def work() -> None:
            try:
                future.set_result(self.run_drift_cycle(keys, data, **kwargs))
            except BaseException as exc:  # propagate, don't wedge waiters
                future.set_exception(exc)

        thread = threading.Thread(
            target=work, name="repro-fleet-drift-cycle", daemon=True
        )
        thread.start()
        return future

    # ------------------------------------------------------------ teardown
    def close(self, drain: bool = True) -> None:
        """Close every shard queue (graceful drain by default)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            with shard.lock:
                queue = shard.queue
            queue.close(drain=drain)

    def __enter__(self) -> "ShapeFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
