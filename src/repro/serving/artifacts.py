"""Versioned, checksummed persistence for fitted clusterers.

A saved model is a directory containing two files:

* ``payload.npz`` — every array the model needs to answer queries
  (centroids, labels, reservoirs, ...), stored uncompressed-exact by
  :func:`numpy.savez_compressed` so round-trips are bit-identical;
* ``manifest.json`` — a human-readable manifest carrying the artifact
  schema version, the model type and constructor parameters, the distance
  metric in a serializable encoding, the preprocessing configuration the
  caller declares, and the SHA-256 checksum of ``payload.npz``.

:func:`load_model` refuses to reconstruct anything suspicious: a manifest
with an unsupported ``schema_version`` raises
:class:`~repro.exceptions.SchemaVersionError`, a payload whose bytes do not
hash to the recorded checksum raises
:class:`~repro.exceptions.ChecksumError`, and structurally broken artifacts
(missing files, unknown model types, unserializable metrics) raise
:class:`~repro.exceptions.ArtifactError`. All three derive from
:class:`~repro.exceptions.ReproError`.

Supported model types: :class:`~repro.core.kshape.KShape`,
:class:`~repro.clustering.kmeans.TimeSeriesKMeans`,
:class:`~repro.clustering.kmedoids.KMedoids`,
:class:`~repro.core.minibatch.MiniBatchKShape`, and
:class:`~repro.classification.nearest_centroid.NearestShapeCentroid`.
Reloaded estimators carry the same fitted state (``labels_``,
``centroids_``, ``inertia_``, reservoirs, ...) and answer ``predict``
bit-identically to the in-memory original.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..classification.nearest_centroid import NearestShapeCentroid
from ..clustering.base import ClusterResult
from ..clustering.kmeans import TimeSeriesKMeans, _mean_centroid
from ..clustering.kmedoids import KMedoids
from ..core.kshape import KShape
from ..core.minibatch import MiniBatchKShape
from ..distances.base import DistanceFn, make_cdtw
from ..distances.dtw import dtw as _dtw
from ..distances.prune import dtw_window_of
from ..exceptions import (
    ArtifactError,
    ChecksumError,
    NotFittedError,
    SchemaVersionError,
)

__all__ = [
    "SCHEMA_VERSION",
    "save_model",
    "load_model",
    "describe_artifact",
]

SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_PAYLOAD = "payload.npz"


# ---------------------------------------------------------------------------
# metric (de)serialization


def encode_metric(metric: object) -> dict:
    """Encode a distance metric into a JSON-serializable description.

    Registered names pass through verbatim; the ``dtw``/``cdtw`` callables
    and :func:`functools.partial` wrappers over them (what
    :func:`repro.distances.make_cdtw` produces) are recognized through
    :func:`repro.distances.dtw_window_of` and stored as a window spec.
    Arbitrary callables cannot be persisted and raise
    :class:`~repro.exceptions.ArtifactError`.
    """
    if isinstance(metric, str):
        return {"kind": "name", "name": metric}
    is_dtw, window = dtw_window_of(metric)
    if is_dtw:
        return {"kind": "dtw", "window": window}
    raise ArtifactError(
        f"cannot persist a custom callable metric ({metric!r}); register it "
        "under a name with repro.register_distance and pass the name instead"
    )


def decode_metric(spec: dict) -> Union[str, DistanceFn]:
    """Inverse of :func:`encode_metric`."""
    kind = spec.get("kind")
    if kind == "name":
        return spec["name"]
    if kind == "dtw":
        window = spec.get("window")
        if window is None:
            return _dtw
        return make_cdtw(window)
    raise ArtifactError(f"unknown metric encoding {spec!r}")


# ---------------------------------------------------------------------------
# ClusterResult <-> (arrays, meta)


def _jsonable(value: object) -> object:
    """Best-effort conversion of ``extra`` payloads to JSON-stable values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "as_dict"):
        return _jsonable(value.as_dict())
    return value


def _pack_result(result: ClusterResult, arrays: dict, meta: dict) -> None:
    arrays["labels"] = result.labels
    if result.centroids is not None:
        arrays["centroids"] = result.centroids
    extra = dict(result.extra)
    medoids = extra.pop("medoid_indices", None)
    if medoids is not None:
        arrays["medoid_indices"] = np.asarray(medoids)
    meta["result"] = {
        "inertia": result.inertia,
        "n_iter": result.n_iter,
        "converged": result.converged,
        "has_centroids": result.centroids is not None,
        "has_medoid_indices": medoids is not None,
        "extra": _jsonable(extra),
    }


def _unpack_result(arrays: dict, meta: dict) -> ClusterResult:
    info = meta["result"]
    extra = dict(info.get("extra", {}))
    if info.get("has_medoid_indices"):
        extra["medoid_indices"] = np.asarray(arrays["medoid_indices"])
    return ClusterResult(
        labels=np.asarray(arrays["labels"]),
        centroids=(
            np.asarray(arrays["centroids"]) if info["has_centroids"] else None
        ),
        inertia=float(info["inertia"]),
        n_iter=int(info["n_iter"]),
        converged=bool(info["converged"]),
        extra=extra,
    )


def _require_result(model: object) -> ClusterResult:
    if model.result_ is None:
        raise NotFittedError(
            f"{type(model).__name__} must be fitted before saving"
        )
    return model.result_


# ---------------------------------------------------------------------------
# per-model exporters / restorers


def _export_kshape(model: KShape) -> Tuple[dict, dict]:
    if model.assignment_distance is not None:
        raise ArtifactError(
            "KShape with a custom assignment_distance cannot be persisted"
        )
    arrays: dict = {}
    meta = {
        "params": {
            "n_clusters": model.n_clusters,
            "max_iter": model.max_iter,
            "n_init": model.n_init,
            "init": model.init,
            "cache_clusters": model.cache_clusters,
        },
        "metric": {"kind": "name", "name": "sbd"},
    }
    _pack_result(_require_result(model), arrays, meta)
    return arrays, meta


def _restore_kshape(arrays: dict, meta: dict) -> KShape:
    model = KShape(**meta["params"])
    model.result_ = _unpack_result(arrays, meta)
    return model


def _export_kmeans(model: TimeSeriesKMeans) -> Tuple[dict, dict]:
    if model.centroid_fn is not _mean_centroid:
        raise ArtifactError(
            "TimeSeriesKMeans with a custom centroid_fn cannot be persisted"
        )
    arrays: dict = {}
    meta = {
        "params": {
            "n_clusters": model.n_clusters,
            "max_iter": model.max_iter,
            "n_init": model.n_init,
            "prune": model.prune,
        },
        "metric": encode_metric(model.metric),
    }
    _pack_result(_require_result(model), arrays, meta)
    return arrays, meta


def _restore_kmeans(arrays: dict, meta: dict) -> TimeSeriesKMeans:
    model = TimeSeriesKMeans(
        metric=decode_metric(meta["metric"]), **meta["params"]
    )
    model.result_ = _unpack_result(arrays, meta)
    return model


def _export_kmedoids(model: KMedoids) -> Tuple[dict, dict]:
    if isinstance(model.metric, str) and model.metric == "precomputed":
        raise ArtifactError(
            "KMedoids fitted on a precomputed matrix has no raw medoid "
            "sequences to serve from and cannot be persisted"
        )
    arrays: dict = {}
    meta = {
        "params": {
            "n_clusters": model.n_clusters,
            "max_iter": model.max_iter,
            "method": model.method,
            "prune": model.prune,
        },
        "metric": encode_metric(model.metric),
    }
    _pack_result(_require_result(model), arrays, meta)
    return arrays, meta


def _restore_kmedoids(arrays: dict, meta: dict) -> KMedoids:
    model = KMedoids(metric=decode_metric(meta["metric"]), **meta["params"])
    model.result_ = _unpack_result(arrays, meta)
    return model


def _export_minibatch(model: MiniBatchKShape) -> Tuple[dict, dict]:
    if model.centroids_ is None or model._reservoirs is None:
        raise NotFittedError("MiniBatchKShape must be fitted before saving")
    arrays: dict = {"centroids": model.centroids_}
    for j, reservoir in enumerate(model._reservoirs):
        arrays[f"reservoir_{j}"] = reservoir
    meta = {
        "params": {
            "n_clusters": model.n_clusters,
            "batch_size": model.batch_size,
            "n_batches": model.n_batches,
            "reservoir_size": model.reservoir_size,
            "seed_iter": model.seed_iter,
        },
        "metric": {"kind": "name", "name": "sbd"},
        "state": {"n_seen": model.n_seen_, "n_reservoirs": len(model._reservoirs)},
    }
    return arrays, meta


def _restore_minibatch(arrays: dict, meta: dict) -> MiniBatchKShape:
    model = MiniBatchKShape(**meta["params"])
    model.centroids_ = np.asarray(arrays["centroids"])
    model._reservoirs = [
        np.asarray(arrays[f"reservoir_{j}"])
        for j in range(int(meta["state"]["n_reservoirs"]))
    ]
    model.n_seen_ = int(meta["state"]["n_seen"])
    return model


def _export_nearest_centroid(model: NearestShapeCentroid) -> Tuple[dict, dict]:
    if model.centroids_ is None or model.classes_ is None:
        raise NotFittedError(
            "NearestShapeCentroid must be fitted before saving"
        )
    arrays = {"centroids": model.centroids_, "classes": model.classes_}
    meta = {
        "params": {"refinements": model.refinements},
        "metric": {"kind": "name", "name": "sbd"},
    }
    return arrays, meta


def _restore_nearest_centroid(arrays: dict, meta: dict) -> NearestShapeCentroid:
    model = NearestShapeCentroid(**meta["params"])
    model.centroids_ = np.asarray(arrays["centroids"])
    model.classes_ = np.asarray(arrays["classes"])
    return model


_Exporter = Callable[[object], Tuple[dict, dict]]
_Restorer = Callable[[dict, dict], object]

_REGISTRY: Dict[str, Tuple[type, _Exporter, _Restorer]] = {
    "KShape": (KShape, _export_kshape, _restore_kshape),
    "TimeSeriesKMeans": (TimeSeriesKMeans, _export_kmeans, _restore_kmeans),
    "KMedoids": (KMedoids, _export_kmedoids, _restore_kmedoids),
    "MiniBatchKShape": (MiniBatchKShape, _export_minibatch, _restore_minibatch),
    "NearestShapeCentroid": (
        NearestShapeCentroid,
        _export_nearest_centroid,
        _restore_nearest_centroid,
    ),
}


def _model_type(model: object) -> str:
    # Exact-type match first, then subclass match (KDBA/KSC persist through
    # their TimeSeriesKMeans surface when their centroid rule permits).
    for name, (cls, _, _) in _REGISTRY.items():
        if type(model) is cls:
            return name
    for name, (cls, _, _) in _REGISTRY.items():
        if isinstance(model, cls):
            return name
    raise ArtifactError(
        f"no artifact exporter for {type(model).__name__}; supported: "
        f"{sorted(_REGISTRY)}"
    )


# ---------------------------------------------------------------------------
# public API


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_model(
    model: object, path: str, preprocessing: Optional[dict] = None
) -> str:
    """Persist a fitted clusterer as a versioned, checksummed artifact.

    Parameters
    ----------
    model:
        A fitted estimator of a supported type (see module docstring).
    path:
        Directory to write; created if missing. Existing
        ``manifest.json`` / ``payload.npz`` inside are overwritten.
    preprocessing:
        Optional JSON-serializable description of the preprocessing the
        model expects at inference time (e.g. ``{"znormalize": True}``).
        Stored verbatim in the manifest; defaults to ``{"znormalize":
        True}``, the package-wide convention.

    Returns
    -------
    str
        The artifact directory path.
    """
    from .. import __version__ as repro_version  # deferred: package init order

    name = _model_type(model)
    _, exporter, _ = _REGISTRY[name]
    arrays, meta = exporter(model)
    os.makedirs(path, exist_ok=True)
    payload_path = os.path.join(path, _PAYLOAD)
    np.savez_compressed(payload_path, **arrays)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "model_type": name,
        "repro_version": repro_version,
        "preprocessing": (
            {"znormalize": True} if preprocessing is None else preprocessing
        ),
        "payload": {
            "file": _PAYLOAD,
            "sha256": _sha256(payload_path),
            "arrays": sorted(arrays),
        },
        **meta,
    }
    with open(os.path.join(path, _MANIFEST), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _read_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.isdir(path) or not os.path.exists(manifest_path):
        raise ArtifactError(f"no model artifact at {path!r}")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable manifest in {path!r}: {exc}") from exc
    if not isinstance(manifest, dict) or "schema_version" not in manifest:
        raise ArtifactError(f"malformed manifest in {path!r}")
    return manifest


def describe_artifact(path: str) -> dict:
    """Return an artifact's manifest without loading its arrays.

    Performs the same schema-version check as :func:`load_model` but skips
    the payload checksum, so it is cheap enough for registry scans.
    """
    manifest = _read_manifest(path)
    version = manifest["schema_version"]
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"artifact {path!r} has schema version {version}; this build "
            f"supports version {SCHEMA_VERSION}"
        )
    return manifest


def load_model(
    path: str,
) -> Union[KShape, TimeSeriesKMeans, KMedoids, MiniBatchKShape, NearestShapeCentroid]:
    """Load a model artifact written by :func:`save_model`.

    Validates the manifest schema version and the payload checksum before
    reconstructing anything, then rebuilds the estimator with its fitted
    state.

    Raises
    ------
    SchemaVersionError
        The manifest declares a schema version this build does not support.
    ChecksumError
        The payload bytes do not hash to the manifest's recorded SHA-256.
    ArtifactError
        The artifact is missing, malformed, or of an unknown model type.
    """
    manifest = describe_artifact(path)
    payload_info = manifest.get("payload", {})
    payload_path = os.path.join(path, payload_info.get("file", _PAYLOAD))
    if not os.path.exists(payload_path):
        raise ArtifactError(f"artifact {path!r} is missing its payload file")
    recorded = payload_info.get("sha256")
    actual = _sha256(payload_path)
    if recorded != actual:
        raise ChecksumError(
            f"payload checksum mismatch for {path!r}: manifest records "
            f"{recorded}, file hashes to {actual}"
        )
    name = manifest.get("model_type")
    if name not in _REGISTRY:
        raise ArtifactError(
            f"artifact {path!r} holds unknown model type {name!r}"
        )
    try:
        with np.load(payload_path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (ValueError, OSError, KeyError) as exc:
        raise ArtifactError(
            f"corrupted payload in artifact {path!r}: {exc}"
        ) from exc
    _, _, restorer = _REGISTRY[name]
    try:
        return restorer(arrays, manifest)
    except (KeyError, TypeError) as exc:
        raise ArtifactError(
            f"artifact {path!r} is missing fields required to rebuild "
            f"{name}: {exc}"
        ) from exc
