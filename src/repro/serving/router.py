"""Consistent-hash routing of series keys across fleet shards.

A fleet splits traffic across shards by *key* (a user id, a sensor id —
whatever identifies the series' source), not round-robin: keeping a key
on one shard keeps its latency statistics, drift observations, and any
per-shard warm state coherent. The classic requirement is stability
under resizing — growing a 4-shard fleet to 5 must not reshuffle
everyone. :class:`ShardRouter` implements the standard consistent-hash
ring: each shard owns ``replicas`` pseudo-random points on a 64-bit
circle, and a key routes to the shard owning the first point at or after
the key's own hash. Adding a shard moves only the keys that fall into
the new shard's arcs (~1/N of them), and removing one moves only *its*
keys — both properties are under test.

Hashing is SHA-256-based and explicitly seeded, so a router rebuilt from
the same ``(shard_ids, replicas, seed)`` triple routes identically
across processes and Python builds — ``hash()`` randomization never
leaks in. Batched routing (:meth:`~ShardRouter.route_batch`) resolves
all keys with one :func:`numpy.searchsorted` over the ring.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import InvalidParameterError

__all__ = ["ShardRouter", "DEFAULT_REPLICAS"]

#: Virtual nodes per shard. 64 points per shard keeps the maximum load
#: imbalance across shards within a few percent for small fleets while
#: the ring stays tiny (N*64 uint64s).
DEFAULT_REPLICAS = 64

Key = Union[str, int, bytes]


def _hash64(seed: int, token: bytes) -> int:
    digest = hashlib.sha256(b"%d:" % seed + token).digest()
    return int.from_bytes(digest[:8], "big")


def _key_bytes(key: Key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (int, np.integer)):
        return b"i%d" % int(key)
    raise InvalidParameterError(
        f"routing keys must be str, bytes, or int, got {type(key).__name__}"
    )


class ShardRouter:
    """Deterministic consistent-hash ring over named shards.

    Parameters
    ----------
    shard_ids:
        Unique shard names (order does not affect routing).
    replicas:
        Virtual ring points per shard.
    seed:
        Hash seed; two routers agree on every key's shard iff they share
        the seed, the replica count, and the shard set.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
    ) -> None:
        ids = list(shard_ids)
        if not ids:
            raise InvalidParameterError("at least one shard is required")
        if len(set(ids)) != len(ids):
            raise InvalidParameterError(f"duplicate shard ids in {ids!r}")
        for shard in ids:
            if not isinstance(shard, str) or not shard:
                raise InvalidParameterError(
                    f"shard ids must be non-empty strings, got {shard!r}"
                )
        self.replicas = check_positive_int(replicas, "replicas")
        self.seed = int(seed)
        self._shards: List[str] = sorted(ids)
        self._rebuild()

    def _rebuild(self) -> None:
        points: List[tuple] = []
        for shard in self._shards:
            token = shard.encode("utf-8")
            for replica in range(self.replicas):
                value = _hash64(self.seed, b"%s#%d" % (token, replica))
                points.append((value, shard))
        # Ties (astronomically unlikely) resolve by shard name so the ring
        # is a pure function of (shard set, replicas, seed).
        points.sort()
        self._ring_hashes = np.array(
            [value for value, _ in points], dtype=np.uint64
        )
        self._ring_owners = [shard for _, shard in points]

    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[str]:
        """Current shard ids (sorted)."""
        return list(self._shards)

    @property
    def ring_size(self) -> int:
        return len(self._ring_owners)

    def add_shard(self, shard_id: str) -> None:
        """Grow the fleet; only keys in the new shard's arcs move."""
        if shard_id in self._shards:
            raise InvalidParameterError(
                f"shard {shard_id!r} is already in the ring"
            )
        if not isinstance(shard_id, str) or not shard_id:
            raise InvalidParameterError(
                f"shard ids must be non-empty strings, got {shard_id!r}"
            )
        self._shards = sorted(self._shards + [shard_id])
        self._rebuild()

    def remove_shard(self, shard_id: str) -> None:
        """Shrink the fleet; only the removed shard's keys move."""
        if shard_id not in self._shards:
            raise InvalidParameterError(f"unknown shard {shard_id!r}")
        if len(self._shards) == 1:
            raise InvalidParameterError("cannot remove the last shard")
        self._shards = [s for s in self._shards if s != shard_id]
        self._rebuild()

    # ------------------------------------------------------------------
    def key_position(self, key: Key) -> float:
        """The key's position on the unit circle (deterministic in the
        seed). The fleet's canary selector uses this to carve off a stable
        fraction of traffic: ``key_position(k) < fraction``."""
        return _hash64(self.seed, b"k:" + _key_bytes(key)) / 2.0**64

    def route(self, key: Key) -> str:
        """The shard owning ``key``."""
        value = _hash64(self.seed, b"k:" + _key_bytes(key))
        idx = int(
            np.searchsorted(self._ring_hashes, value, side="left")
        ) % len(self._ring_owners)
        return self._ring_owners[idx]

    def route_batch(self, keys: Sequence[Key]) -> List[str]:
        """Owning shard per key, resolved in one sorted-ring lookup."""
        if len(keys) == 0:
            return []
        values = np.array(
            [_hash64(self.seed, b"k:" + _key_bytes(key)) for key in keys],
            dtype=np.uint64,
        )
        idx = np.searchsorted(self._ring_hashes, values, side="left")
        idx %= len(self._ring_owners)
        return [self._ring_owners[i] for i in idx]

    def load_map(self, keys: Sequence[Key]) -> Dict[str, int]:
        """Keys-per-shard histogram (every shard present, possibly 0)."""
        counts = {shard: 0 for shard in self._shards}
        for shard in self.route_batch(keys):
            counts[shard] += 1
        return counts
