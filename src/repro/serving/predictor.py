"""Batched online inference against a fixed set of centroids.

A fitted clusterer answers ``predict`` by rebuilding per-centroid state
(rFFTs under SBD, Keogh envelopes under (c)DTW) on every call.
:class:`ShapePredictor` hoists that work to construction time — the
amortization Rock the KASBA and the UCR Suite argue for — so a serving
process pays it once per model load and each request only costs the
query-side math:

* **SBD** — the centroid rFFTs and norms are precomputed at the model's
  FFT length; a batch of queries takes one :func:`rfft_batch` plus one
  chunked :func:`~repro.core._fft_batch.ncc_c_max_multi` broadcast, the
  same kernel the estimators train and predict with, so served labels are
  bit-identical to :meth:`KShape.predict`;
* **(c)DTW** — queries route through the
  :class:`~repro.distances.prune.NeighborEngine` lower-bound cascade built
  once over the centroids (envelopes precomputed), exactly matching the
  estimators' pruned assignment;
* **other registered metrics** — a dense
  :func:`~repro.distances.matrix.cross_distances` fallback.

Batched and per-series answers are exactly equal: every kernel involved
evaluates each (query, centroid) cell independently of the batch it rides
in.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Optional

import numpy as np
from numpy.typing import ArrayLike

from .._validation import as_dataset
from ..core._fft_batch import fft_len_for, ncc_c_max_multi, rfft_batch
from ..distances.prune import NeighborEngine, PruningStats, dtw_window_of
from ..exceptions import InvalidParameterError, ShapeMismatchError

if TYPE_CHECKING:
    from ..search.index import CentroidIndex, IndexStats

__all__ = ["Prediction", "ShapePredictor"]


@dataclass
class Prediction:
    """Answer to a batched assignment query.

    Attributes
    ----------
    labels:
        ``(n,)`` index of the closest centroid per query.
    distances:
        ``(n,)`` distance of each query to its assigned centroid.
    all_distances:
        ``(n, k)`` full distance matrix, when the query path computed one
        (under SBD and dense metrics unless indexed routing answered the
        query; under pruned (c)DTW only when soft memberships were
        requested).
    memberships:
        ``(n, k)`` soft memberships (rows sum to 1), when requested.
    """

    labels: np.ndarray
    distances: np.ndarray
    all_distances: Optional[np.ndarray] = None
    memberships: Optional[np.ndarray] = None


def soft_memberships(dists: np.ndarray, fuzziness: float = 2.0) -> np.ndarray:
    """Fuzzy c-means memberships from a ``(n, k)`` distance matrix.

    Uses the classic update ``u_ij = 1 / sum_l (d_ij / d_il)^(2/(f-1))``
    with the same ``1e-12`` distance floor as
    :class:`~repro.clustering.fuzzy.FuzzyCShapes`, so a query sitting on a
    centroid gets (near-)full weight there.
    """
    if fuzziness <= 1.0:
        raise InvalidParameterError(
            f"fuzziness must be > 1, got {fuzziness}"
        )
    d = np.maximum(np.asarray(dists, dtype=np.float64), 1e-12)
    exponent = 2.0 / (fuzziness - 1.0)
    ratio = d[:, :, None] / d[:, None, :]
    return 1.0 / np.sum(ratio**exponent, axis=2)


class ShapePredictor:
    """Precomputed, batched assignment queries against fixed centroids.

    Parameters
    ----------
    centroids:
        ``(k, m)`` centroid matrix the queries are assigned to.
    metric:
        ``"sbd"`` (default), a (c)DTW name/callable (routed through the
        pruned :class:`~repro.distances.NeighborEngine`), or any registered
        distance name (dense fallback).
    fuzziness:
        Fuzzifier used when soft memberships are requested.
    index:
        ``None`` (default, exhaustive kernels), ``"exact"``, or
        ``"approx"`` — route hard assignments through a
        :class:`~repro.search.CentroidIndex` built once over the
        centroids. Exact routing returns bit-identical labels and
        distances; approximate routing trades a measured recall
        (``index_stats.recall`` after :meth:`evaluate_recall`) for less
        refine work. Only valid under SBD and (c)DTW metrics. Soft
        memberships and :meth:`transform` still use the full matrix.

    Attributes
    ----------
    n_clusters:
        Number of centroids served.
    m:
        Expected query length.
    stats:
        Cumulative :class:`~repro.distances.PruningStats` of the (c)DTW
        engine (all-zero under other metrics).
    index_stats:
        Cumulative :class:`~repro.search.IndexStats` of the router
        (``None`` when ``index`` is off).
    """

    def __init__(
        self,
        centroids: ArrayLike,
        metric: object = "sbd",
        fuzziness: float = 2.0,
        index: Optional[str] = None,
    ) -> None:
        C = as_dataset(centroids, "centroids")
        self.centroids = C
        self.n_clusters, self.m = C.shape
        self.metric = metric
        if fuzziness <= 1.0:
            raise InvalidParameterError(
                f"fuzziness must be > 1, got {fuzziness}"
            )
        self.fuzziness = fuzziness
        self._engine: Optional[NeighborEngine] = None
        self._fft_C = None
        is_dtw, _ = dtw_window_of(metric)
        self._is_sbd = isinstance(metric, str) and metric == "sbd"
        self._is_dtw = is_dtw
        if self._is_sbd:
            # Precompute once what sbd_to_centroids would rebuild per call.
            self._fft_len = fft_len_for(self.m)
            self._fft_C = rfft_batch(C, self._fft_len)
            self._norms_C = np.linalg.norm(C, axis=1)
        elif is_dtw:
            self._engine = NeighborEngine(C, metric=metric)
        else:
            from ..distances.base import get_distance

            if isinstance(metric, str):
                get_distance(metric)  # fail fast on unknown names
            elif not callable(metric):
                raise InvalidParameterError(
                    f"metric must be a distance name or callable, got {metric!r}"
                )
        self._index: Optional["CentroidIndex"] = None
        if index is not None:
            if index not in ("exact", "approx"):
                raise InvalidParameterError(
                    f"index must be None, 'exact', or 'approx', got {index!r}"
                )
            if not (self._is_sbd or self._is_dtw):
                raise InvalidParameterError(
                    "index routing requires metric='sbd' or a (c)DTW metric"
                )
            from ..search.index import CentroidIndex

            # clamp_negative=False: the predictor's exhaustive SBD matrix
            # is unclamped, and exact routing must match it bit-for-bit.
            self._index = CentroidIndex(
                C, metric=metric, mode=index, clamp_negative=False
            )
        self.index = index
        self.stats = PruningStats()
        self.kernel_seconds = 0.0
        self.n_queries = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: object, **kwargs: object) -> "ShapePredictor":
        """Build a predictor from any fitted estimator exposing centroids.

        Picks the model's own assignment metric: SBD for
        :class:`~repro.core.kshape.KShape` /
        :class:`~repro.core.minibatch.MiniBatchKShape` /
        :class:`~repro.classification.nearest_centroid.NearestShapeCentroid`,
        the fitted ``metric`` for
        :class:`~repro.clustering.kmeans.TimeSeriesKMeans` and
        :class:`~repro.clustering.kmedoids.KMedoids`.
        """
        centroids = getattr(model, "centroids_", None)
        if centroids is None:
            raise InvalidParameterError(
                f"{type(model).__name__} exposes no centroids to serve from"
            )
        metric = kwargs.pop("metric", None)
        if metric is None:
            metric = getattr(model, "metric", "sbd")
        return cls(centroids, metric=metric, **kwargs)

    @classmethod
    def from_artifact(cls, path: str, **kwargs: object) -> "ShapePredictor":
        """Load a saved artifact (:func:`repro.serving.load_model`) and wrap
        it in a predictor."""
        from .artifacts import load_model

        return cls.from_model(load_model(path), **kwargs)

    # ------------------------------------------------------------------
    def _check_batch(self, X: ArrayLike) -> np.ndarray:
        data = as_dataset(X, "X")
        if data.shape[1] != self.m:
            raise ShapeMismatchError(
                f"query length {data.shape[1]} does not match the model's "
                f"series length {self.m}"
            )
        return data

    def _sbd_matrix(self, data: np.ndarray) -> np.ndarray:
        fft_X = rfft_batch(data, self._fft_len)
        norms_X = np.linalg.norm(data, axis=1)
        values, _ = ncc_c_max_multi(
            fft_X, norms_X, self._fft_C, self._norms_C, self.m, self._fft_len
        )
        return 1.0 - values.T

    def _dense_matrix(self, data: np.ndarray) -> np.ndarray:
        from ..distances.matrix import cross_distances

        return cross_distances(data, self.centroids, metric=self.metric)

    # ------------------------------------------------------------------
    def predict(self, X: ArrayLike) -> np.ndarray:
        """Closest-centroid label for each row of ``X``."""
        return self.predict_full(X).labels

    def transform(self, X: ArrayLike) -> np.ndarray:
        """``(n, k)`` distance matrix of queries to all centroids."""
        data = self._check_batch(X)
        tick = perf_counter()
        if self._is_sbd:
            dists = self._sbd_matrix(data)
        elif self._is_dtw:
            from ..distances.matrix import cross_distances

            dists = cross_distances(data, self.centroids, metric=self.metric)
        else:
            dists = self._dense_matrix(data)
        self.kernel_seconds += perf_counter() - tick
        self.n_queries += data.shape[0]
        return dists

    def predict_full(self, X: ArrayLike, soft: bool = False) -> Prediction:
        """Labels, distances, and (optionally) soft memberships for ``X``.

        With a pruned (c)DTW metric and ``soft=False``, only the nearest
        distance per query is computed (the lower-bound cascade skips the
        rest); ``soft=True`` forces the full matrix since memberships need
        every column. Labels are identical either way — the engine is
        exact. With ``index`` enabled and ``soft=False``, assignments
        route through the centroid index instead (no ``all_distances``);
        exact routing keeps labels and distances bit-identical.
        """
        data = self._check_batch(X)
        tick = perf_counter()
        if self._index is not None and not soft:
            labels, best = self._index.query_batch(data)
            if self._is_dtw:
                self.stats = self._index.stats.pruning
            self.kernel_seconds += perf_counter() - tick
            self.n_queries += data.shape[0]
            return Prediction(labels=labels, distances=best)
        if self._is_dtw and not soft:
            labels, best = self._engine.query_batch(data)
            self.stats = self._engine.stats
            self.kernel_seconds += perf_counter() - tick
            self.n_queries += data.shape[0]
            return Prediction(labels=labels, distances=best)
        if self._is_sbd:
            dists = self._sbd_matrix(data)
        else:
            dists = self._dense_matrix(data)
        labels = np.argmin(dists, axis=1)
        nearest = dists[np.arange(data.shape[0]), labels]
        memberships = (
            soft_memberships(dists, self.fuzziness) if soft else None
        )
        self.kernel_seconds += perf_counter() - tick
        self.n_queries += data.shape[0]
        return Prediction(
            labels=labels,
            distances=nearest,
            all_distances=dists,
            memberships=memberships,
        )

    # ------------------------------------------------------------------
    @property
    def index_stats(self) -> Optional[IndexStats]:
        """Cumulative router statistics (``None`` when ``index`` is off)."""
        return None if self._index is None else self._index.stats

    def evaluate_recall(self, X: ArrayLike) -> float:
        """Measured argmin recall of the router on ``X``.

        Requires ``index`` to be enabled; exact mode returns 1.0 by
        construction, approximate mode reports what the beam cost. The
        result also accumulates into ``index_stats.recall``.
        """
        if self._index is None:
            raise InvalidParameterError(
                "evaluate_recall requires index='exact' or 'approx'"
            )
        return self._index.evaluate_recall(self._check_batch(X))
