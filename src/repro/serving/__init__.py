"""Model serving: persisted artifacts, batched inference, fleet operations.

The training side of this package answers "what are the clusters?"; this
subpackage answers "how do we *serve* them". Seven pieces:

* :mod:`~repro.serving.artifacts` — versioned, checksummed
  :func:`save_model` / :func:`load_model` persistence for fitted
  clusterers (npz payload + JSON manifest);
* :mod:`~repro.serving.predictor` — :class:`ShapePredictor`, batched
  assignment queries with per-model state (centroid rFFTs, Keogh
  envelopes) precomputed once at load time;
* :mod:`~repro.serving.queue` — :class:`MicroBatchQueue`, coalescing
  single-series traffic into batched kernel calls under a
  max-batch/max-latency policy, with :class:`ServingStats` counters and
  a graceful ``close(drain=...)`` shutdown;
* :mod:`~repro.serving.maintenance` — :class:`CentroidMaintainer`,
  folding labeled traffic back into centroids with decayed shape
  extraction and flagging distribution drift;
* :mod:`~repro.serving.registry` — :class:`ModelRegistry`, a directory
  of many published, checksummed model versions with pin/retire and
  atomic index updates;
* :mod:`~repro.serving.router` — :class:`ShardRouter`, seeded
  consistent-hash routing of series keys across fleet shards;
* :mod:`~repro.serving.fleet` — :class:`ShapeFleet`, sharded serving
  with loss-free hot artifact swap, staged canary promotion, and a
  closed drift-refit loop, rolled up into :class:`FleetStats`.
"""

from .artifacts import (
    SCHEMA_VERSION,
    describe_artifact,
    load_model,
    save_model,
)
from .fleet import (
    DriftCycleReport,
    FleetStats,
    PromotionReport,
    ShapeFleet,
    SwapReport,
)
from .maintenance import CentroidMaintainer, DriftReport
from .predictor import Prediction, ShapePredictor, soft_memberships
from .queue import MicroBatchQueue, ServingStats
from .registry import REGISTRY_SCHEMA_VERSION, ModelRegistry
from .router import ShardRouter

__all__ = [
    "SCHEMA_VERSION",
    "REGISTRY_SCHEMA_VERSION",
    "save_model",
    "load_model",
    "describe_artifact",
    "ShapePredictor",
    "Prediction",
    "soft_memberships",
    "MicroBatchQueue",
    "ServingStats",
    "CentroidMaintainer",
    "DriftReport",
    "ModelRegistry",
    "ShardRouter",
    "ShapeFleet",
    "FleetStats",
    "SwapReport",
    "PromotionReport",
    "DriftCycleReport",
]
