"""Model serving: persisted artifacts, batched inference, drift upkeep.

The training side of this package answers "what are the clusters?"; this
subpackage answers "how do we *serve* them". Four pieces:

* :mod:`~repro.serving.artifacts` — versioned, checksummed
  :func:`save_model` / :func:`load_model` persistence for fitted
  clusterers (npz payload + JSON manifest);
* :mod:`~repro.serving.predictor` — :class:`ShapePredictor`, batched
  assignment queries with per-model state (centroid rFFTs, Keogh
  envelopes) precomputed once at load time;
* :mod:`~repro.serving.queue` — :class:`MicroBatchQueue`, coalescing
  single-series traffic into batched kernel calls under a
  max-batch/max-latency policy, with :class:`ServingStats` counters;
* :mod:`~repro.serving.maintenance` — :class:`CentroidMaintainer`,
  folding labeled traffic back into centroids with decayed shape
  extraction and flagging distribution drift.
"""

from .artifacts import (
    SCHEMA_VERSION,
    describe_artifact,
    load_model,
    save_model,
)
from .maintenance import CentroidMaintainer, DriftReport
from .predictor import Prediction, ShapePredictor, soft_memberships
from .queue import MicroBatchQueue, ServingStats

__all__ = [
    "SCHEMA_VERSION",
    "save_model",
    "load_model",
    "describe_artifact",
    "ShapePredictor",
    "Prediction",
    "soft_memberships",
    "MicroBatchQueue",
    "ServingStats",
    "CentroidMaintainer",
    "DriftReport",
]
