"""Versioned multi-model registry over the artifact layer.

A fleet serves *many* model versions over its lifetime: the version it
launched with, every drift-triggered refit, and whatever an operator
publishes by hand. :class:`ModelRegistry` is the shared source of truth
they all load from — a directory of :mod:`repro.serving.artifacts`
directories plus one checksummed index:

```
root/
    registry.json          # the index: versions, states, pin, checksum
    models/<version>/      # one artifact directory per published version
        manifest.json
        payload.npz
```

Three properties the fleet's hot-swap path depends on:

* **atomic layout** — :meth:`~ModelRegistry.publish` writes the artifact
  into a staging directory and ``os.replace``-renames it into
  ``models/<version>``, then rewrites the index the same way (temp file +
  rename), so a crash mid-publish never leaves a half-written version
  that a concurrent loader could pick up;
* **checksums end to end** — every load goes through
  :func:`~repro.serving.artifacts.load_model` (payload SHA-256 verified)
  *and* cross-checks the payload digest recorded in the index against the
  artifact's own manifest, so a swapped-out payload is caught even when
  its manifest was rewritten to match; the index itself carries a SHA-256
  over its canonical body, mirroring :mod:`repro.tuning.profile`'s trust
  model;
* **determinism** — publishing the same fitted model twice produces
  byte-identical artifacts and index bodies (monotonic sequence numbers,
  no timestamps; enforced by lint rule RPR003).

Malformed or tampered indexes raise
:class:`~repro.exceptions.RegistryError`; artifact-level problems keep
their :class:`~repro.exceptions.ArtifactError` /
:class:`~repro.exceptions.ChecksumError` /
:class:`~repro.exceptions.SchemaVersionError` types, so a fleet can
distinguish "bad registry" from "bad candidate version" and roll back
accordingly.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from typing import Any, Dict, List, Optional

from ..exceptions import ChecksumError, RegistryError
from .artifacts import describe_artifact, load_model, save_model

__all__ = ["REGISTRY_SCHEMA_VERSION", "ModelRegistry"]

REGISTRY_SCHEMA_VERSION = 1
REGISTRY_KIND = "repro-model-registry"

_INDEX = "registry.json"
_MODELS_DIR = "models"
_STAGING_PREFIX = ".staging-"

#: published version names: path-safe, no separators, no leading dot
_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_STATES = ("active", "retired")


def _index_checksum(body: Dict[str, Any]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RegistryError(message)


class ModelRegistry:
    """Versioned, checksummed store of published model artifacts.

    Parameters
    ----------
    root:
        Registry directory; created (with an empty index) if missing.

    Notes
    -----
    The index is read once at construction and kept in memory; every
    mutation rewrites it atomically. Two processes publishing *different*
    versions concurrently are safe on POSIX rename semantics; two
    processes racing to publish the *same* version name surface as a
    :class:`~repro.exceptions.RegistryError` for the loser.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self._models = os.path.join(self.root, _MODELS_DIR)
        os.makedirs(self._models, exist_ok=True)
        index_path = os.path.join(self.root, _INDEX)
        if os.path.exists(index_path):
            self._index = self._read_index(index_path)
        else:
            self._index = {
                "kind": REGISTRY_KIND,
                "schema_version": REGISTRY_SCHEMA_VERSION,
                "versions": {},
                "pinned": None,
            }
            self._write_index()

    # ------------------------------------------------------------- index io
    def _read_index(self, path: str) -> Dict[str, Any]:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"unreadable registry index {path!r}: {exc}"
            ) from exc
        _require(isinstance(payload, dict), f"registry index {path!r} is not an object")
        recorded = payload.pop("checksum", None)
        _require(
            isinstance(recorded, str),
            f"registry index {path!r} has no checksum (truncated write?)",
        )
        _require(
            payload.get("kind") == REGISTRY_KIND,
            f"{path!r} is not a model-registry index "
            f"(kind={payload.get('kind')!r})",
        )
        version = payload.get("schema_version")
        _require(
            isinstance(version, int) and version == REGISTRY_SCHEMA_VERSION,
            f"registry index {path!r} has schema_version {version!r}; this "
            f"build reads version {REGISTRY_SCHEMA_VERSION}",
        )
        if _index_checksum(payload) != recorded:
            raise RegistryError(
                f"registry index {path!r} failed checksum verification "
                "(edited by hand or corrupted on disk?)"
            )
        records = payload.get("versions")
        _require(
            isinstance(records, dict),
            f"registry index {path!r}: versions must be an object",
        )
        for name, record in records.items():
            _require(
                isinstance(record, dict)
                and record.get("state") in _STATES
                and isinstance(record.get("sequence"), int)
                and isinstance(record.get("payload_sha256"), str)
                and isinstance(record.get("model_type"), str),
                f"registry index {path!r}: malformed record for "
                f"version {name!r}",
            )
        pinned = payload.get("pinned")
        _require(
            pinned is None or pinned in records,
            f"registry index {path!r}: pinned version {pinned!r} is not "
            "a published version",
        )
        return payload

    def _write_index(self) -> None:
        body = {
            "kind": REGISTRY_KIND,
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "versions": {
                name: dict(record)
                for name, record in sorted(self._index["versions"].items())
            },
            "pinned": self._index["pinned"],
        }
        body["checksum"] = _index_checksum(
            {key: value for key, value in body.items() if key != "checksum"}
        )
        target = os.path.join(self.root, _INDEX)
        staging = target + ".tmp"
        with open(staging, "w") as handle:
            json.dump(body, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, target)
        self._index = {key: value for key, value in body.items() if key != "checksum"}

    # ------------------------------------------------------------- queries
    def _record(self, version: str) -> Dict[str, Any]:
        record = self._index["versions"].get(version)
        if record is None:
            raise RegistryError(
                f"version {version!r} is not in the registry; published: "
                f"{self.versions(include_retired=True)}"
            )
        return record

    def versions(self, include_retired: bool = False) -> List[str]:
        """Published version names in publication order."""
        items = sorted(
            self._index["versions"].items(), key=lambda kv: kv[1]["sequence"]
        )
        return [
            name
            for name, record in items
            if include_retired or record["state"] == "active"
        ]

    def latest(self) -> Optional[str]:
        """Most recently published active version, or ``None``."""
        active = self.versions()
        return active[-1] if active else None

    @property
    def pinned(self) -> Optional[str]:
        """The explicitly pinned version, or ``None``."""
        return self._index["pinned"]

    def resolve(self) -> str:
        """The version a fleet should serve: pinned, else latest active."""
        version = self.pinned or self.latest()
        if version is None:
            raise RegistryError(
                f"registry at {self.root!r} has no active versions to serve"
            )
        return version

    def path_of(self, version: str) -> str:
        """On-disk artifact directory of a published version."""
        self._record(version)
        return os.path.join(self._models, version)

    def describe(self, version: str) -> Dict[str, Any]:
        """Registry record plus the artifact manifest (arrays not loaded)."""
        record = dict(self._record(version))
        manifest = describe_artifact(os.path.join(self._models, version))
        return {"version": version, **record, "manifest": manifest}

    # ----------------------------------------------------------- mutations
    def publish(
        self,
        model: object,
        version: Optional[str] = None,
        preprocessing: Optional[dict] = None,
    ) -> str:
        """Save a fitted model as a new version; returns its name.

        ``version=None`` auto-names ``v0001``, ``v0002``, … from the next
        sequence number. The artifact lands in a staging directory first
        and is renamed into place before the index mentions it.
        """
        sequence = 1 + max(
            (record["sequence"] for record in self._index["versions"].values()),
            default=0,
        )
        if version is None:
            version = f"v{sequence:04d}"
        # fullmatch, not match: `$` alone would accept a trailing newline,
        # and version names become directory names.
        if not _VERSION_RE.fullmatch(version):
            raise RegistryError(
                f"version name {version!r} must match {_VERSION_RE.pattern}"
            )
        if version in self._index["versions"]:
            raise RegistryError(
                f"version {version!r} is already published; versions are "
                "immutable — publish under a new name instead"
            )
        staging = os.path.join(self.root, f"{_STAGING_PREFIX}{version}")
        final = os.path.join(self._models, version)
        if os.path.exists(staging):
            shutil.rmtree(staging)
        try:
            save_model(model, staging, preprocessing=preprocessing)
            manifest = describe_artifact(staging)
            os.replace(staging, final)
        except Exception:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._index["versions"][version] = {
            "state": "active",
            "sequence": sequence,
            "model_type": manifest["model_type"],
            "payload_sha256": manifest["payload"]["sha256"],
        }
        self._write_index()
        return version

    def pin(self, version: str) -> None:
        """Pin :meth:`resolve` to a version (must be active)."""
        record = self._record(version)
        _require(
            record["state"] == "active",
            f"cannot pin retired version {version!r}",
        )
        self._index["pinned"] = version
        self._write_index()

    def unpin(self) -> None:
        """Return :meth:`resolve` to latest-active semantics."""
        if self._index["pinned"] is not None:
            self._index["pinned"] = None
            self._write_index()

    def retire(self, version: str) -> None:
        """Mark a version unservable (its files stay for forensics)."""
        record = self._record(version)
        _require(
            self._index["pinned"] != version,
            f"cannot retire pinned version {version!r}; unpin first",
        )
        if record["state"] != "retired":
            record["state"] = "retired"
            self._write_index()

    # ------------------------------------------------------------- loading
    def verify(self, version: str) -> Dict[str, Any]:
        """Re-hash a version's payload against manifest *and* index.

        Returns the registry record on success; raises
        :class:`~repro.exceptions.ChecksumError` when either recorded
        digest disagrees with the bytes on disk.
        """
        record = self._record(version)
        path = os.path.join(self._models, version)
        manifest = describe_artifact(path)
        from .artifacts import _PAYLOAD, _sha256

        actual = _sha256(os.path.join(path, _PAYLOAD))
        for source, recorded in (
            ("manifest", manifest["payload"]["sha256"]),
            ("registry index", record["payload_sha256"]),
        ):
            if actual != recorded:
                raise ChecksumError(
                    f"version {version!r}: payload hashes to {actual}, but "
                    f"the {source} records {recorded}"
                )
        return dict(record)

    def load(self, version: str) -> object:
        """Checksum-verified load of a published version's estimator.

        On top of :func:`~repro.serving.artifacts.load_model`'s own
        manifest-vs-payload check, the payload digest must match what the
        index recorded at publish time — a tampered artifact *directory*
        (manifest rewritten to match a swapped payload) still fails here.
        """
        record = self._record(version)
        path = os.path.join(self._models, version)
        manifest = describe_artifact(path)
        if manifest["payload"]["sha256"] != record["payload_sha256"]:
            raise ChecksumError(
                f"version {version!r}: artifact manifest records payload "
                f"digest {manifest['payload']['sha256']}, but the registry "
                f"recorded {record['payload_sha256']} at publish time"
            )
        return load_model(path)
