"""Online centroid upkeep and drift detection for served models.

A deployed clusterer ages: the traffic it labels slowly stops looking like
the data it was fitted on. This module keeps a served model honest without
refitting from scratch:

* **decayed centroid updates** — labeled traffic folds back into the
  centroids with the bounded-reservoir rule of
  :class:`~repro.core.minibatch.MiniBatchKShape` (assign under SBD, append
  to a FIFO reservoir, re-extract the shape with the previous centroid as
  alignment reference), blended with the previous centroid under a
  ``decay`` factor — ``decay=1.0`` reproduces the mini-batch rule exactly,
  smaller values damp each batch's influence;
* **drift detection** — every update records the batch's SBD-to-assigned-
  centroid distances. The first ``baseline_window`` observations freeze a
  baseline distribution; afterwards a rolling window of the most recent
  distances is compared to it with a z-test on the mean. A significant
  upward shift means traffic is drifting away from the centroids and the
  model should be refitted (or the maintainer's updated centroids
  promoted).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np
from numpy.typing import ArrayLike

from .._validation import as_dataset, check_positive_int
from ..core._fft_batch import fft_len_for, rfft_batch, sbd_to_centroids
from ..core.shape_extraction import shape_extraction
from ..exceptions import InvalidParameterError, ShapeMismatchError
from ..preprocessing.normalization import zscore
from .predictor import ShapePredictor

__all__ = ["DriftReport", "CentroidMaintainer"]


@dataclass
class DriftReport:
    """Outcome of a drift check.

    Attributes
    ----------
    drifted:
        Whether the recent mean SBD shifted above the baseline by more than
        ``threshold`` standard errors.
    z_score:
        Standardized shift of the recent mean against the baseline
        distribution (positive = traffic moving away from the centroids).
    baseline_mean / baseline_std:
        The frozen reference distribution's moments.
    recent_mean:
        Mean of the rolling window being tested.
    n_baseline / n_recent:
        Observation counts behind each side.
    threshold:
        The z-score the check fired against.
    """

    drifted: bool
    z_score: float
    baseline_mean: float
    baseline_std: float
    recent_mean: float
    n_baseline: int
    n_recent: int
    threshold: float

    def as_dict(self) -> dict:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


class CentroidMaintainer:
    """Fold labeled traffic back into centroids; flag distribution drift.

    Parameters
    ----------
    centroids:
        ``(k, m)`` starting centroids (typically a fitted model's).
    reservoir_size:
        Members retained per cluster for re-extraction (FIFO eviction),
        exactly as :class:`~repro.core.minibatch.MiniBatchKShape`.
    decay:
        Blend factor in ``(0, 1]`` applied after each re-extraction:
        ``centroid = zscore(decay * extracted + (1 - decay) * previous)``.
        ``1.0`` (default) is the plain mini-batch update.
    baseline_window:
        SBD observations frozen into the drift baseline before testing
        starts.
    recent_window:
        Rolling observations compared against the baseline.
    drift_threshold:
        z-score above which :meth:`check_drift` reports drift.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import KShape, zscore
    >>> from repro.serving import CentroidMaintainer
    >>> rng = np.random.default_rng(0)
    >>> t = np.linspace(0, 1, 64)
    >>> X = zscore(np.r_[
    ...     [np.sin(2 * np.pi * (2 * t + p)) for p in rng.uniform(0, 1, 10)],
    ...     [np.sin(2 * np.pi * (5 * t + p)) for p in rng.uniform(0, 1, 10)],
    ... ])
    >>> model = KShape(n_clusters=2, random_state=1).fit(X)
    >>> keeper = CentroidMaintainer.from_model(model, baseline_window=20)
    >>> labels = keeper.update(X)
    >>> keeper.check_drift().drifted
    False
    """

    def __init__(
        self,
        centroids: ArrayLike,
        reservoir_size: int = 128,
        decay: float = 1.0,
        baseline_window: int = 256,
        recent_window: int = 128,
        drift_threshold: float = 3.0,
    ) -> None:
        C = as_dataset(centroids, "centroids")
        self.centroids_ = C.copy()
        self.n_clusters, self.m = C.shape
        self.reservoir_size = check_positive_int(
            reservoir_size, "reservoir_size"
        )
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(
                f"decay must be in (0, 1], got {decay}"
            )
        self.decay = float(decay)
        self.baseline_window = check_positive_int(
            baseline_window, "baseline_window"
        )
        self.recent_window = check_positive_int(
            recent_window, "recent_window"
        )
        if drift_threshold <= 0:
            raise InvalidParameterError(
                f"drift_threshold must be > 0, got {drift_threshold}"
            )
        self.drift_threshold = float(drift_threshold)
        self._reservoirs: List[np.ndarray] = [
            np.empty((0, self.m)) for _ in range(self.n_clusters)
        ]
        self._baseline: List[float] = []
        self._recent: Deque[float] = deque(maxlen=self.recent_window)
        self.n_updates_ = 0
        self.n_seen_ = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: object, **kwargs: object) -> "CentroidMaintainer":
        """Wrap a fitted estimator's centroids (and, for
        :class:`~repro.core.minibatch.MiniBatchKShape`, adopt its
        reservoirs and reservoir size as the starting state)."""
        centroids = getattr(model, "centroids_", None)
        if centroids is None:
            raise InvalidParameterError(
                f"{type(model).__name__} exposes no centroids to maintain"
            )
        reservoirs = getattr(model, "_reservoirs", None)
        if reservoirs is not None:
            kwargs.setdefault(
                "reservoir_size", getattr(model, "reservoir_size")
            )
        keeper = cls(centroids, **kwargs)
        if reservoirs is not None:
            keeper._reservoirs = [
                np.asarray(r[-keeper.reservoir_size:], dtype=np.float64).copy()
                for r in reservoirs
            ]
        return keeper

    # ------------------------------------------------------------------
    def _assign(self, data: np.ndarray) -> tuple:
        n, m = data.shape
        fft_len = fft_len_for(m)
        fft_X = rfft_batch(data, fft_len)
        norms = np.linalg.norm(data, axis=1)
        dists, _ = sbd_to_centroids(
            fft_X, norms, self.centroids_, m, fft_len
        )
        labels = np.argmin(dists, axis=1)
        return labels, dists[np.arange(n), labels]

    def observe(self, X: ArrayLike) -> np.ndarray:
        """Record a batch's SBD-to-centroid distances *without* updating
        centroids (monitoring-only deployments). Returns the labels."""
        data = self._check(X)
        labels, nearest = self._assign(data)
        self._record(nearest)
        self.n_seen_ += data.shape[0]
        return labels

    def update(self, X: ArrayLike, labels: Optional[ArrayLike] = None) -> np.ndarray:
        """Fold one batch into the centroids; returns the labels used.

        Parameters
        ----------
        X:
            ``(n, m)`` batch of (z-normalized) series.
        labels:
            Optional precomputed assignments (e.g. the served labels from a
            :class:`~repro.serving.ShapePredictor`, avoiding a second
            assignment pass). When omitted, the batch is assigned under SBD
            with the shared batched kernel.
        """
        data = self._check(X)
        if labels is None:
            labels, nearest = self._assign(data)
        else:
            labels = np.asarray(labels).ravel()
            if labels.shape[0] != data.shape[0]:
                raise ShapeMismatchError(
                    "labels must have one entry per series"
                )
            if labels.size and (
                labels.min() < 0 or labels.max() >= self.n_clusters
            ):
                raise InvalidParameterError(
                    f"labels must lie in [0, {self.n_clusters})"
                )
            _, nearest = self._assign(data)
        self._record(nearest)
        for j in np.unique(labels):
            members = data[labels == j]
            pool = np.vstack([self._reservoirs[j], members])
            self._reservoirs[j] = pool[-self.reservoir_size:]
            extracted = shape_extraction(
                self._reservoirs[j], reference=self.centroids_[j]
            )
            if self.decay >= 1.0:
                self.centroids_[j] = extracted
            else:
                blended = (
                    self.decay * extracted
                    + (1.0 - self.decay) * self.centroids_[j]
                )
                self.centroids_[j] = zscore(blended)
        self.n_updates_ += 1
        self.n_seen_ += data.shape[0]
        return labels

    def _check(self, X: ArrayLike) -> np.ndarray:
        data = as_dataset(X, "X")
        if data.shape[1] != self.m:
            raise ShapeMismatchError(
                f"batch length {data.shape[1]} does not match centroids "
                f"({self.m})"
            )
        return data

    def _record(self, nearest: np.ndarray) -> None:
        for value in np.asarray(nearest, dtype=np.float64):
            if len(self._baseline) < self.baseline_window:
                self._baseline.append(float(value))
            else:
                self._recent.append(float(value))

    # ------------------------------------------------------------------
    def check_drift(self) -> DriftReport:
        """Test the rolling window's mean SBD against the frozen baseline.

        Uses a one-sided z-test on the mean: ``z = (recent_mean -
        baseline_mean) / (baseline_std / sqrt(n_recent))``. Until both the
        baseline is frozen and at least two recent observations exist, the
        report carries ``z_score = 0`` and never flags drift.
        """
        n_base = len(self._baseline)
        n_recent = len(self._recent)
        base_mean = float(np.mean(self._baseline)) if n_base else 0.0
        base_std = float(np.std(self._baseline)) if n_base else 0.0
        recent_mean = float(np.mean(self._recent)) if n_recent else 0.0
        ready = n_base >= self.baseline_window and n_recent >= 2
        if ready and base_std > 0:
            z = (recent_mean - base_mean) / (base_std / np.sqrt(n_recent))
        elif ready and recent_mean > base_mean:
            z = float("inf")  # zero-variance baseline, any rise is drift
        else:
            z = 0.0
        return DriftReport(
            drifted=bool(ready and z > self.drift_threshold),
            z_score=float(z),
            baseline_mean=base_mean,
            baseline_std=base_std,
            recent_mean=recent_mean,
            n_baseline=n_base,
            n_recent=n_recent,
            threshold=self.drift_threshold,
        )

    def reset_baseline(self) -> None:
        """Re-learn the baseline from future traffic (after a deliberate
        model refresh, for example)."""
        self._baseline = []
        self._recent.clear()

    def reset_after_swap(self, centroids: Optional[ArrayLike] = None) -> None:
        """Forget all state tied to the previous model version.

        After a hot artifact swap the maintainer's reservoirs hold members
        assigned under the *old* centroids and its drift windows measure
        distances to them — folding either into the new version corrupts
        both the centroids and the drift statistics. This clears the
        reservoirs, re-learns the drift baseline from future traffic, and
        (when ``centroids`` is given) adopts the new version's centroids —
        the cluster count may change across versions. Lifetime counters
        (``n_updates_``, ``n_seen_``) keep accumulating.
        """
        if centroids is not None:
            C = as_dataset(centroids, "centroids")
            self.centroids_ = C.copy()
            self.n_clusters, self.m = C.shape
        self._reservoirs = [
            np.empty((0, self.m)) for _ in range(self.n_clusters)
        ]
        self.reset_baseline()

    def predictor(self, **kwargs: object) -> ShapePredictor:
        """A fresh :class:`~repro.serving.ShapePredictor` over the current
        centroids (rFFTs recomputed, since updates invalidate them)."""
        return ShapePredictor(self.centroids_, metric="sbd", **kwargs)
