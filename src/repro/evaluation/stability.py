"""Clustering stability analysis (label-free model assessment).

A partition that changes drastically under re-initialization or mild
resampling is untrustworthy regardless of its inertia. These tools measure
that, using ARI between partitions as the agreement score:

* :func:`seed_stability` — mean pairwise ARI across re-initialized runs of
  the same configuration;
* :func:`subsample_stability` — mean ARI between the partition of the full
  data and partitions of random subsamples (compared on the intersection);
* :func:`consensus_matrix` — fraction of runs in which each pair of
  sequences lands in the same cluster, the input of consensus clustering.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._validation import as_dataset, as_rng, check_positive_int
from ..exceptions import InvalidParameterError
from .clustering_metrics import adjusted_rand_index

__all__ = [
    "seed_stability",
    "subsample_stability",
    "consensus_matrix",
    "consensus_cluster",
]


def _collect_labelings(factory, X, n_runs, rng):
    labelings = []
    for _ in range(n_runs):
        seed = int(rng.integers(0, 2**31 - 1))
        labelings.append(np.asarray(factory(seed).fit_predict(X)))
    return labelings


def seed_stability(
    factory: Callable[[int], object],
    X,
    n_runs: int = 10,
    rng=None,
) -> float:
    """Mean pairwise ARI across ``n_runs`` differently seeded runs.

    Parameters
    ----------
    factory:
        ``factory(seed) -> estimator with fit_predict``.

    Returns
    -------
    float
        1.0 means every run produced the same partition.
    """
    data = as_dataset(X, "X")
    check_positive_int(n_runs, "n_runs", minimum=2)
    generator = as_rng(rng)
    labelings = _collect_labelings(factory, data, n_runs, generator)
    scores = []
    for i in range(n_runs):
        for j in range(i + 1, n_runs):
            scores.append(adjusted_rand_index(labelings[i], labelings[j]))
    return float(np.mean(scores))


def subsample_stability(
    factory: Callable[[int], object],
    X,
    fraction: float = 0.8,
    n_runs: int = 10,
    rng=None,
) -> float:
    """Mean ARI between the full-data partition and subsample partitions.

    Each run reclusters a random ``fraction`` of the sequences and compares
    the labels on that subset against the full-data partition restricted to
    the same subset.
    """
    data = as_dataset(X, "X")
    if not 0.0 < fraction < 1.0:
        raise InvalidParameterError(
            f"fraction must be in (0, 1), got {fraction}"
        )
    check_positive_int(n_runs, "n_runs")
    generator = as_rng(rng)
    reference = np.asarray(factory(0).fit_predict(data))
    n = data.shape[0]
    size = max(3, int(round(fraction * n)))
    scores = []
    for _ in range(n_runs):
        idx = generator.choice(n, size=size, replace=False)
        seed = int(generator.integers(0, 2**31 - 1))
        labels = np.asarray(factory(seed).fit_predict(data[idx]))
        scores.append(adjusted_rand_index(reference[idx], labels))
    return float(np.mean(scores))


def consensus_matrix(
    factory: Callable[[int], object],
    X,
    n_runs: int = 20,
    rng=None,
) -> np.ndarray:
    """``(n, n)`` co-assignment frequencies over re-initialized runs.

    Entry ``(i, j)`` is the fraction of runs placing sequences ``i`` and
    ``j`` in the same cluster. A crisp block structure signals a stable
    clustering; uniform gray signals noise.
    """
    data = as_dataset(X, "X")
    check_positive_int(n_runs, "n_runs")
    generator = as_rng(rng)
    n = data.shape[0]
    counts = np.zeros((n, n))
    for labels in _collect_labelings(factory, data, n_runs, generator):
        same = labels[:, None] == labels[None, :]
        counts += same
    return counts / n_runs


def consensus_cluster(
    factory: Callable[[int], object],
    X,
    n_clusters: int,
    n_runs: int = 20,
    rng=None,
) -> np.ndarray:
    """Consensus clustering: agglomerate the co-assignment matrix.

    Runs ``factory`` ``n_runs`` times, builds the consensus matrix, and cuts
    an average-linkage dendrogram of ``1 - consensus`` into ``n_clusters``
    groups — a standard way to stabilize a stochastic base clusterer.
    """
    from ..clustering.hierarchical import cut_tree, linkage_matrix

    check_positive_int(n_clusters, "n_clusters")
    C = consensus_matrix(factory, X, n_runs=n_runs, rng=rng)
    D = 1.0 - C
    np.fill_diagonal(D, 0.0)
    merges = linkage_matrix(D, "average")
    return cut_tree(merges, n_clusters)
