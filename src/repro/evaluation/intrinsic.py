"""Intrinsic clustering criteria and cluster-count estimation.

The paper assumes the target number of clusters ``k`` is given, noting
(Section 2.6, footnote 2) that ``k`` can otherwise be estimated "by varying
k and evaluating clustering quality with criteria that capture information
intrinsic to the data alone". This module supplies that machinery:

* :func:`silhouette_score` — the average silhouette coefficient computed
  from any dissimilarity matrix, so it works with SBD, cDTW, or ED alike;
* :func:`estimate_n_clusters` — sweep ``k`` over a range, cluster with a
  caller-supplied factory (k-Shape by default), and return the ``k``
  maximizing the silhouette.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from .._validation import as_dataset
from ..distances.base import DistanceFn
from ..distances.matrix import pairwise_distances
from ..exceptions import InvalidParameterError

__all__ = ["silhouette_samples", "silhouette_score", "estimate_n_clusters"]


def silhouette_samples(D: np.ndarray, labels) -> np.ndarray:
    """Per-item silhouette coefficients from a dissimilarity matrix.

    For item ``i`` with mean intra-cluster dissimilarity ``a`` and smallest
    mean dissimilarity to another cluster ``b``, the silhouette is
    ``(b - a) / max(a, b)``; singleton clusters score 0 by convention.
    """
    D = np.asarray(D, dtype=np.float64)
    labels = np.asarray(labels).ravel()
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise InvalidParameterError("D must be a square dissimilarity matrix")
    if labels.shape[0] != D.shape[0]:
        raise InvalidParameterError("labels must have one entry per row of D")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise InvalidParameterError("silhouette requires at least 2 clusters")
    n = D.shape[0]
    out = np.zeros(n)
    masks = {c: labels == c for c in unique}
    for i in range(n):
        own = masks[labels[i]]
        own_size = own.sum()
        if own_size <= 1:
            out[i] = 0.0
            continue
        a = D[i, own].sum() / (own_size - 1)  # exclude self (D[i, i] = 0)
        b = min(
            D[i, masks[c]].mean() for c in unique if c != labels[i]
        )
        denom = max(a, b)
        out[i] = 0.0 if denom == 0.0 else (b - a) / denom
    return out


def silhouette_score(D: np.ndarray, labels) -> float:
    """Mean silhouette coefficient over all items (higher is better)."""
    return float(silhouette_samples(D, labels).mean())


def estimate_n_clusters(
    X,
    k_range: Iterable[int] = range(2, 9),
    metric: Union[str, DistanceFn] = "sbd",
    clusterer_factory: Optional[Callable[[int], object]] = None,
    random_state=None,
) -> Tuple[int, Dict[int, float]]:
    """Pick ``k`` by maximizing the silhouette over a range of candidates.

    Parameters
    ----------
    X:
        ``(n, m)`` dataset.
    k_range:
        Candidate cluster counts (each must satisfy ``2 <= k < n``).
    metric:
        Distance used for the silhouette matrix (and for k-Shape this should
        stay ``"sbd"`` so the criterion matches the algorithm's geometry).
    clusterer_factory:
        ``factory(k) -> estimator with fit_predict``; defaults to
        :class:`repro.core.kshape.KShape` seeded with ``random_state``.

    Returns
    -------
    (best_k, scores):
        The maximizing ``k`` and the silhouette score per candidate.
    """
    data = as_dataset(X, "X")
    candidates = [int(k) for k in k_range]
    if not candidates:
        raise InvalidParameterError("k_range must contain at least one candidate")
    if any(k < 2 or k > data.shape[0] for k in candidates):
        raise InvalidParameterError(
            "every k must satisfy 2 <= k <= n for silhouette estimation"
        )
    if clusterer_factory is None:
        from ..core.kshape import KShape

        def clusterer_factory(k, _seed=random_state):
            return KShape(k, random_state=_seed)

    D = pairwise_distances(data, metric=metric)
    scores: Dict[int, float] = {}
    for k in candidates:
        labels = clusterer_factory(k).fit_predict(data)
        if np.unique(labels).shape[0] < 2:
            scores[k] = -1.0
            continue
        scores[k] = silhouette_score(D, labels)
    best = max(scores, key=lambda k: scores[k])
    return best, scores
