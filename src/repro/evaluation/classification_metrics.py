"""Classification metrics for the 1-NN and nearest-centroid evaluators.

The paper reports plain accuracy (Section 4); these companions break a
classifier's behavior down per class — useful when the archive's classes
are imbalanced or when diagnosing which shapes a distance measure confuses.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..exceptions import EmptyInputError, ShapeMismatchError

__all__ = [
    "confusion_matrix",
    "accuracy",
    "precision_recall_f1",
    "classification_report",
]


def _check_pair(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    a = np.asarray(y_true).ravel()
    b = np.asarray(y_pred).ravel()
    if a.shape[0] != b.shape[0]:
        raise ShapeMismatchError(
            f"label arrays differ in length: {a.shape[0]} vs {b.shape[0]}"
        )
    if a.shape[0] == 0:
        raise EmptyInputError("label arrays must not be empty")
    classes = np.unique(np.concatenate([a, b]))
    return a, b, classes


def confusion_matrix(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    """``(classes, C)`` where ``C[i, j]`` counts true class ``i`` predicted ``j``."""
    a, b, classes = _check_pair(y_true, y_pred)
    index = {c: i for i, c in enumerate(classes)}
    C = np.zeros((classes.shape[0], classes.shape[0]), dtype=np.int64)
    for t, p in zip(a, b):
        C[index[t], index[p]] += 1
    return classes, C


def accuracy(y_true, y_pred) -> float:
    """Fraction of matching labels."""
    a, b, _ = _check_pair(y_true, y_pred)
    return float(np.mean(a == b))


def precision_recall_f1(y_true, y_pred) -> Dict:
    """Per-class precision/recall/F1 plus macro averages.

    Classes never predicted get precision 0 (the usual convention); classes
    absent from the truth get recall 0.
    """
    classes, C = confusion_matrix(y_true, y_pred)
    per_class = {}
    precisions, recalls, f1s = [], [], []
    for i, cls in enumerate(classes):
        tp = float(C[i, i])
        predicted = float(C[:, i].sum())
        actual = float(C[i, :].sum())
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        per_class[cls] = {
            "precision": precision, "recall": recall, "f1": f1,
            "support": int(actual),
        }
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    return {
        "per_class": per_class,
        "macro_precision": float(np.mean(precisions)),
        "macro_recall": float(np.mean(recalls)),
        "macro_f1": float(np.mean(f1s)),
        "accuracy": accuracy(y_true, y_pred),
    }


def classification_report(y_true, y_pred) -> str:
    """Human-readable per-class report (monospace table)."""
    from ..harness.report import format_table

    stats = precision_recall_f1(y_true, y_pred)
    rows = [
        [str(cls), s["precision"], s["recall"], s["f1"], s["support"]]
        for cls, s in stats["per_class"].items()
    ]
    rows.append([
        "macro", stats["macro_precision"], stats["macro_recall"],
        stats["macro_f1"], sum(s["support"] for s in stats["per_class"].values()),
    ])
    table = format_table(
        ["class", "precision", "recall", "f1", "support"], rows,
    )
    return table + f"\naccuracy: {stats['accuracy']:.3f}"
