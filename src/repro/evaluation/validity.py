"""Internal cluster-validity indices beyond the silhouette.

Companions to :mod:`repro.evaluation.intrinsic` for choosing ``k`` or
comparing partitions without labels (paper Section 2.6, footnote 2). All
three consume an arbitrary dissimilarity matrix so they compose with SBD,
cDTW, or ED alike:

* :func:`davies_bouldin` — mean over clusters of the worst
  (scatter_i + scatter_j) / separation_ij ratio; **lower is better**;
* :func:`dunn_index` — minimum between-cluster separation over maximum
  within-cluster diameter; **higher is better**;
* :func:`within_between_ratio` — mean within-cluster dissimilarity over
  mean between-cluster dissimilarity; **lower is better**.

Medoid-style definitions (scatter = mean distance to the cluster medoid)
are used so only the matrix is needed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["davies_bouldin", "dunn_index", "within_between_ratio"]


def _check(D, labels) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    D = np.asarray(D, dtype=np.float64)
    labels = np.asarray(labels).ravel()
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise InvalidParameterError("D must be a square dissimilarity matrix")
    if labels.shape[0] != D.shape[0]:
        raise InvalidParameterError("labels must have one entry per row of D")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise InvalidParameterError("validity indices require >= 2 clusters")
    return D, labels, unique


def _medoid_and_scatter(D: np.ndarray, idx: np.ndarray) -> Tuple[int, float]:
    """Medoid (min total dissimilarity) and mean distance to it."""
    sub = D[np.ix_(idx, idx)]
    medoid_local = int(np.argmin(sub.sum(axis=1)))
    scatter = float(sub[medoid_local].mean())
    return int(idx[medoid_local]), scatter


def davies_bouldin(D, labels) -> float:
    """Davies-Bouldin index from a dissimilarity matrix (lower is better)."""
    D, labels, unique = _check(D, labels)
    medoids, scatters = [], []
    for c in unique:
        medoid, scatter = _medoid_and_scatter(D, np.flatnonzero(labels == c))
        medoids.append(medoid)
        scatters.append(scatter)
    k = len(unique)
    worst = np.zeros(k)
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            separation = D[medoids[i], medoids[j]]
            if separation <= 0:
                ratio = np.inf
            else:
                ratio = (scatters[i] + scatters[j]) / separation
            worst[i] = max(worst[i], ratio)
    return float(worst.mean())


def dunn_index(D, labels) -> float:
    """Dunn index from a dissimilarity matrix (higher is better)."""
    D, labels, unique = _check(D, labels)
    groups = [np.flatnonzero(labels == c) for c in unique]
    max_diameter = 0.0
    for idx in groups:
        if idx.shape[0] > 1:
            sub = D[np.ix_(idx, idx)]
            max_diameter = max(max_diameter, float(sub.max()))
    min_separation = np.inf
    for i in range(len(groups)):
        for j in range(i + 1, len(groups)):
            sep = float(D[np.ix_(groups[i], groups[j])].min())
            min_separation = min(min_separation, sep)
    if max_diameter == 0.0:
        return np.inf if min_separation > 0 else 0.0
    return min_separation / max_diameter


def within_between_ratio(D, labels) -> float:
    """Mean within-cluster over mean between-cluster dissimilarity."""
    D, labels, unique = _check(D, labels)
    same = labels[:, None] == labels[None, :]
    off_diag = ~np.eye(D.shape[0], dtype=bool)
    within_mask = same & off_diag
    between_mask = ~same
    if not within_mask.any():
        return 0.0
    within = float(D[within_mask].mean())
    between = float(D[between_mask].mean()) if between_mask.any() else np.inf
    if between == 0.0:
        return np.inf if within > 0 else 0.0
    return within / between
