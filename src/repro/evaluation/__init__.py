"""Clustering and classification quality metrics (Section 4)."""

from .classification_metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from .stability import (
    consensus_cluster,
    consensus_matrix,
    seed_stability,
    subsample_stability,
)
from .intrinsic import estimate_n_clusters, silhouette_samples, silhouette_score
from .validity import davies_bouldin, dunn_index, within_between_ratio
from .clustering_metrics import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    purity,
    rand_index,
)

__all__ = [
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "contingency_table",
    "silhouette_score",
    "silhouette_samples",
    "estimate_n_clusters",
    "davies_bouldin",
    "dunn_index",
    "within_between_ratio",
    "seed_stability",
    "subsample_stability",
    "consensus_matrix",
    "consensus_cluster",
    "confusion_matrix",
    "accuracy",
    "precision_recall_f1",
    "classification_report",
]
