"""Clustering quality metrics (paper Section 4, [67]).

The paper scores every clustering method with the **Rand Index** over the
fused train+test split of each dataset. This module implements it (via the
pair-counting contingency table, so it runs in ``O(n + |table|)`` rather
than ``O(n^2)``) alongside the common companions — Adjusted Rand Index,
Normalized Mutual Information, and purity — which the extended experiments
and tests use as cross-checks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import EmptyInputError, ShapeMismatchError

__all__ = [
    "contingency_table",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
]


def _check_pair(labels_true, labels_pred) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(labels_true).ravel()
    b = np.asarray(labels_pred).ravel()
    if a.shape[0] != b.shape[0]:
        raise ShapeMismatchError(
            f"label arrays differ in length: {a.shape[0]} vs {b.shape[0]}"
        )
    if a.shape[0] == 0:
        raise EmptyInputError("label arrays must not be empty")
    return a, b


def contingency_table(labels_true, labels_pred) -> np.ndarray:
    """Contingency table ``C[i, j]`` = count of items in true class ``i`` and cluster ``j``."""
    a, b = _check_pair(labels_true, labels_pred)
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    table = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table


def _pair_counts(labels_true, labels_pred) -> Tuple[float, float, float, float]:
    """(TP, FP, FN, TN) over all pairs of items, as in the paper's definition."""
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()
    total_pairs = n * (n - 1) / 2.0
    same_both = (table * (table - 1) / 2.0).sum()           # TP
    row = table.sum(axis=1)
    col = table.sum(axis=0)
    same_class = (row * (row - 1) / 2.0).sum()              # TP + FN
    same_cluster = (col * (col - 1) / 2.0).sum()            # TP + FP
    tp = float(same_both)
    fp = float(same_cluster - same_both)
    fn = float(same_class - same_both)
    tn = float(total_pairs - tp - fp - fn)
    return tp, fp, fn, tn


def rand_index(labels_true, labels_pred) -> float:
    """Rand Index ``R = (TP + TN) / (TP + TN + FP + FN)`` in [0, 1].

    ``TP`` counts pairs in the same class and same cluster; ``TN`` pairs in
    different classes and different clusters (paper Section 4).
    A single-item input has no pairs; by convention it scores 1.

    Examples
    --------
    >>> rand_index([0, 0, 1, 1], [1, 1, 0, 0])   # relabeling is free
    1.0
    >>> rand_index([0, 0, 1, 1], [0, 1, 1, 1])
    0.5
    """
    a, _ = _check_pair(labels_true, labels_pred)
    if a.shape[0] == 1:
        return 1.0
    tp, fp, fn, tn = _pair_counts(labels_true, labels_pred)
    return (tp + tn) / (tp + tn + fp + fn)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Rand Index adjusted for chance (Hubert & Arabie); 0 ~ random, 1 = perfect."""
    a, _ = _check_pair(labels_true, labels_pred)
    if a.shape[0] == 1:
        return 1.0
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()
    sum_comb = (table * (table - 1) / 2.0).sum()
    row = table.sum(axis=1)
    col = table.sum(axis=0)
    sum_row = (row * (row - 1) / 2.0).sum()
    sum_col = (col * (col - 1) / 2.0).sum()
    total = n * (n - 1) / 2.0
    expected = sum_row * sum_col / total
    max_index = (sum_row + sum_col) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_comb - expected) / (max_index - expected))


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    table = contingency_table(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)
    nz = pij > 0
    outer = pi[:, None] * pj[None, :]
    mi = float(np.sum(pij[nz] * np.log(pij[nz] / outer[nz])))
    h_true = float(-np.sum(pi[pi > 0] * np.log(pi[pi > 0])))
    h_pred = float(-np.sum(pj[pj > 0] * np.log(pj[pj > 0])))
    denom = (h_true + h_pred) / 2.0
    if denom == 0.0:
        return 1.0
    return max(0.0, mi / denom)


def purity(labels_true, labels_pred) -> float:
    """Fraction of items whose cluster's majority class matches their class."""
    table = contingency_table(labels_true, labels_pred)
    return float(table.max(axis=0).sum() / table.sum())
