"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free entry points for the most common workflows:

* ``list-datasets`` — print the synthetic archive index;
* ``cluster``       — cluster one archive dataset (or UCR files) with any
  method and report Rand Index / ARI;
* ``classify``      — 1-NN distance-measure evaluation on one dataset;
* ``estimate-k``    — silhouette-based cluster-count estimation;
* ``export``        — write an archive dataset as UCR-style TSV files;
* ``search``        — find the best matches of a training sequence inside a
  concatenation of the test split (a quick MASS demo on real data).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load(args):
    from .datasets import load_dataset, load_ucr_dataset

    if args.ucr_dir:
        return load_ucr_dataset(args.ucr_dir, args.dataset)
    return load_dataset(args.dataset)


def _build_method(name: str, k: int, seed):
    from . import KDBA, KSC, Hierarchical, KMedoids, KShape, SpectralClustering
    from .clustering import TimeSeriesKMeans

    table = {
        "kshape": lambda: KShape(k, random_state=seed, n_init=3),
        "kavg-ed": lambda: TimeSeriesKMeans(k, metric="ed", random_state=seed,
                                            n_init=3),
        "kavg-sbd": lambda: TimeSeriesKMeans(k, metric="sbd", random_state=seed,
                                             n_init=3),
        "ksc": lambda: KSC(k, random_state=seed),
        "kdba": lambda: KDBA(k, window=0.1, random_state=seed, max_iter=20),
        "pam-ed": lambda: KMedoids(k, metric="ed", random_state=seed),
        "pam-sbd": lambda: KMedoids(k, metric="sbd", random_state=seed),
        "pam-cdtw": lambda: KMedoids(k, metric="cdtw5", random_state=seed),
        "hier-single": lambda: Hierarchical(k, "single", metric="sbd"),
        "hier-average": lambda: Hierarchical(k, "average", metric="sbd"),
        "hier-complete": lambda: Hierarchical(k, "complete", metric="sbd"),
        "spectral": lambda: SpectralClustering(k, metric="sbd",
                                               random_state=seed),
    }
    if name not in table:
        raise SystemExit(
            f"unknown method {name!r}; choose from: {', '.join(sorted(table))}"
        )
    return table[name]()


def cmd_list_datasets(_args) -> int:
    from .datasets import list_datasets, load_dataset

    for name in list_datasets():
        print(load_dataset(name).summary())
    return 0


def cmd_cluster(args) -> int:
    from . import adjusted_rand_index, rand_index

    ds = _load(args)
    model = _build_method(args.method, ds.n_classes, args.seed)
    model.fit(ds.X)
    print(ds.summary())
    print(f"method       : {args.method}")
    print(f"Rand Index   : {rand_index(ds.y, model.labels_):.4f}")
    print(f"Adjusted RI  : {adjusted_rand_index(ds.y, model.labels_):.4f}")
    print(f"cluster sizes: {np.bincount(model.labels_).tolist()}")
    return 0


def cmd_classify(args) -> int:
    from .classification import one_nn_accuracy

    ds = _load(args)
    print(ds.summary())
    for measure in args.measures.split(","):
        acc = one_nn_accuracy(
            ds.X_train, ds.y_train, ds.X_test, ds.y_test, metric=measure.strip()
        )
        print(f"1-NN {measure.strip():10s} accuracy = {acc:.4f}")
    return 0


def cmd_export(args) -> int:
    from .datasets import export_ucr_format

    ds = _load(args)
    train, test = export_ucr_format(ds, args.directory)
    print(f"wrote {train}")
    print(f"wrote {test}")
    return 0


def cmd_search(args) -> int:
    from .search import top_k_matches

    ds = _load(args)
    query = ds.X_train[args.query_index]
    haystack = ds.X_test.ravel()
    print(ds.summary())
    print(f"query: training sequence #{args.query_index} "
          f"(class {ds.y_train[args.query_index]})")
    for start, dist in top_k_matches(query, haystack, k=args.k):
        source = start // ds.length
        print(f"  match at offset {start} (test sequence ~#{source}, "
              f"class {ds.y_test[min(source, ds.n_test - 1)]}): "
              f"distance {dist:.3f}")
    return 0


def cmd_estimate_k(args) -> int:
    from .evaluation import estimate_n_clusters

    ds = _load(args)
    best, scores = estimate_n_clusters(
        ds.X, k_range=range(2, args.max_k + 1), random_state=args.seed
    )
    print(ds.summary())
    for k in sorted(scores):
        marker = "  <-- best" if k == best else ""
        print(f"k={k}: silhouette={scores[k]:.4f}{marker}")
    print(f"true number of classes: {ds.n_classes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-Shape reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="print the synthetic archive index")

    def add_dataset_args(p):
        p.add_argument("dataset", help="archive dataset name (or UCR name)")
        p.add_argument("--ucr-dir", default=None,
                       help="directory holding real UCR files")
        p.add_argument("--seed", type=int, default=0)

    p_cluster = sub.add_parser("cluster", help="cluster one dataset")
    add_dataset_args(p_cluster)
    p_cluster.add_argument("--method", default="kshape")

    p_classify = sub.add_parser("classify", help="1-NN distance evaluation")
    add_dataset_args(p_classify)
    p_classify.add_argument("--measures", default="ed,sbd,cdtw5")

    p_estimate = sub.add_parser("estimate-k", help="estimate cluster count")
    add_dataset_args(p_estimate)
    p_estimate.add_argument("--max-k", type=int, default=6)

    p_export = sub.add_parser("export", help="write UCR-style TSV files")
    add_dataset_args(p_export)
    p_export.add_argument("--directory", default="./ucr_export")

    p_search = sub.add_parser("search", help="query search demo (MASS)")
    add_dataset_args(p_search)
    p_search.add_argument("--query-index", type=int, default=0)
    p_search.add_argument("-k", type=int, default=3)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-datasets": cmd_list_datasets,
        "cluster": cmd_cluster,
        "classify": cmd_classify,
        "estimate-k": cmd_estimate_k,
        "export": cmd_export,
        "search": cmd_search,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
