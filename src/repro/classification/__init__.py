"""1-NN classification used for distance-measure evaluation (Section 4)."""

from .nearest_centroid import NearestShapeCentroid
from .nearest_neighbor import (
    leave_one_out_accuracy,
    one_nn_accuracy,
    one_nn_classify,
    tune_cdtw_window,
)

__all__ = [
    "one_nn_classify",
    "one_nn_accuracy",
    "leave_one_out_accuracy",
    "tune_cdtw_window",
    "NearestShapeCentroid",
]
