"""1-NN classification — the paper's distance-measure evaluator (Section 4).

Following [19], distance measures are compared through the accuracy of a
one-nearest-neighbor classifier, which is simple, parameter-free, and
deterministic. This module provides:

* :func:`one_nn_classify` / :func:`one_nn_accuracy` — train/test 1-NN with
  any registered or callable distance, optionally pruned with LB_Keogh
  (the paper's ``cDTW_LB`` configurations);
* :func:`leave_one_out_accuracy` — LOO 1-NN over a training set;
* :func:`tune_cdtw_window` — the paper's ``cDTWopt`` protocol: pick the
  Sakoe-Chiba window maximizing leave-one-out accuracy on the training set.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_dataset
from ..distances.base import DistanceFn, make_cdtw
from ..distances.dtw import dtw
from ..distances.matrix import cross_distances
from ..distances.prune import NeighborEngine, PruningStats
from ..exceptions import EmptyInputError, ShapeMismatchError

__all__ = [
    "one_nn_classify",
    "one_nn_accuracy",
    "leave_one_out_accuracy",
    "tune_cdtw_window",
]


def _check_labels(X: np.ndarray, y, name: str) -> np.ndarray:
    labels = np.asarray(y)
    if labels.ndim != 1 or labels.shape[0] != X.shape[0]:
        raise ShapeMismatchError(
            f"{name} labels must be 1-D with one entry per sequence"
        )
    return labels


def one_nn_classify(
    X_train,
    y_train,
    X_test,
    metric: Union[str, DistanceFn] = "ed",
    lb_window=None,
    stats: Optional[PruningStats] = None,
    n_jobs: Optional[int] = None,
    backend: Optional[str] = None,
    index: Optional[str] = None,
) -> np.ndarray:
    """Predict a label for each test series from its nearest training series.

    Parameters
    ----------
    X_train, y_train:
        Labeled training set (``(n, m)`` array, ``(n,)`` labels).
    X_test:
        ``(q, m)`` query set.
    metric:
        Registered distance name or callable.
    lb_window:
        When set, the search runs through the pruned
        :class:`repro.distances.NeighborEngine`: training-set envelopes are
        precomputed once per call, candidates are screened with the
        LB_Kim → LB_Yi → LB_Keogh cascade at this Sakoe-Chiba window, and
        survivors are confirmed with early-abandoning (c)DTW — the paper's
        ``_LB`` configurations. Predictions are bit-identical to the
        brute-force path. Only sound when ``metric`` is (c)DTW with a
        window no wider than ``lb_window``.
    stats:
        Optional :class:`repro.distances.PruningStats` accumulator the
        pruned search's per-tier counters are merged into.
    n_jobs, backend:
        Parallel execution of the pruned queries (see
        :mod:`repro.parallel`); each query prunes independently, so results
        are deterministic in the worker count. Ignored on the brute path.
    index:
        ``None`` (default), ``"exact"``, or ``"approx"`` — route the 1-NN
        search through a :class:`~repro.search.CentroidIndex` built over
        the training set. Requires an SBD or (c)DTW metric; combine with
        ``lb_window`` to widen the (c)DTW refine envelope. Exact routing
        returns bit-identical predictions; router counters merge into
        ``stats`` when it is an :class:`~repro.search.IndexStats`.

    Returns
    -------
    numpy.ndarray
        Predicted labels, one per test series.
    """
    train = as_dataset(X_train, "X_train")
    test = as_dataset(X_test, "X_test")
    labels = _check_labels(train, y_train, "train")
    if train.shape[1] != test.shape[1]:
        raise ShapeMismatchError(
            "train and test series must have equal length"
        )
    if index is not None:
        from ..search.index import CentroidIndex, IndexStats

        router = CentroidIndex(
            train, metric=metric, mode=index, window=lb_window
        )
        nearest, _ = router.query_batch(test)
        if isinstance(stats, IndexStats):
            stats.merge(router.stats)
        elif stats is not None:
            stats.merge(router.stats.pruning)
        return labels[nearest]
    if lb_window is None:
        dists = cross_distances(test, train, metric=metric)
        nearest = np.argmin(dists, axis=1)
        return labels[nearest]
    engine = NeighborEngine(train, window=lb_window, metric=metric)
    nearest, _ = engine.query_batch(test, n_jobs=n_jobs, backend=backend)
    if stats is not None:
        stats.merge(engine.stats)
    return labels[nearest]


def one_nn_accuracy(
    X_train,
    y_train,
    X_test,
    y_test,
    metric: Union[str, DistanceFn] = "ed",
    lb_window=None,
    stats: Optional[PruningStats] = None,
    n_jobs: Optional[int] = None,
    backend: Optional[str] = None,
    index: Optional[str] = None,
) -> float:
    """Fraction of test series whose 1-NN label matches the true label."""
    test = as_dataset(X_test, "X_test")
    truth = _check_labels(test, y_test, "test")
    predicted = one_nn_classify(
        X_train, y_train, X_test, metric=metric, lb_window=lb_window,
        stats=stats, n_jobs=n_jobs, backend=backend, index=index,
    )
    return float(np.mean(predicted == truth))


def leave_one_out_accuracy(
    X,
    y,
    metric: Union[str, DistanceFn] = "ed",
) -> float:
    """Leave-one-out 1-NN accuracy over a single labeled set."""
    data = as_dataset(X, "X")
    labels = _check_labels(data, y, "train")
    if data.shape[0] < 2:
        raise EmptyInputError("leave-one-out requires at least two sequences")
    dists = cross_distances(data, data, metric=metric)
    np.fill_diagonal(dists, np.inf)
    nearest = np.argmin(dists, axis=1)
    return float(np.mean(labels[nearest] == labels))


def tune_cdtw_window(
    X_train,
    y_train,
    windows: Sequence[float] = tuple(w / 100 for w in range(0, 11)),
) -> Tuple[float, float]:
    """``cDTWopt`` window tuning: leave-one-out over the training set.

    Parameters
    ----------
    windows:
        Candidate Sakoe-Chiba windows as fractions of the series length
        (0 means pure ED-like alignment). Defaults to 0%..10% in 1% steps.

    Returns
    -------
    (best_window, best_accuracy):
        The smallest window achieving the best leave-one-out accuracy.
    """
    if not windows:
        raise EmptyInputError("windows must contain at least one candidate")
    best_window = None
    best_acc = -1.0
    for w in windows:
        fn = make_cdtw(w) if w > 0 else (lambda a, b: dtw(a, b, window=0))
        acc = leave_one_out_accuracy(X_train, y_train, metric=fn)
        if acc > best_acc:
            best_acc = acc
            best_window = w
    return float(best_window), float(best_acc)
