"""Nearest-shape-centroid classification (clustering as a subroutine).

The paper motivates clustering "not only as a powerful stand-alone
exploratory method, but also as a preprocessing step or subroutine for
other tasks" (Section 1). This module is that subroutine made concrete for
classification: summarize each class by its extracted shape (Algorithm 2)
and label a query by the closest centroid under SBD.

Compared to 1-NN (the paper's evaluation classifier), the nearest-centroid
rule trades a little accuracy for *k vs n* query cost — each prediction
compares against one centroid per class instead of every training sequence
— and yields interpretable per-class prototypes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import as_dataset
from ..core._fft_batch import fft_len_for, rfft_batch, sbd_to_centroids
from ..core.shape_extraction import shape_extraction
from ..exceptions import NotFittedError, ShapeMismatchError

__all__ = ["NearestShapeCentroid"]


class NearestShapeCentroid:
    """Classifier assigning each query to the class of its closest shape.

    Parameters
    ----------
    refinements:
        Shape-extraction passes per class: the first pass uses the class
        mean as alignment reference, later passes use the previous
        centroid (mirroring k-Shape's refinement).

    Attributes
    ----------
    classes_:
        Sorted class labels.
    centroids_:
        ``(n_classes, m)`` extracted per-class shapes.
    """

    def __init__(self, refinements: int = 2):
        if refinements < 1:
            from ..exceptions import InvalidParameterError

            raise InvalidParameterError(
                f"refinements must be >= 1, got {refinements}"
            )
        self.refinements = refinements
        self.classes_: Optional[np.ndarray] = None
        self.centroids_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "NearestShapeCentroid":
        data = as_dataset(X, "X")
        labels = np.asarray(y).ravel()
        if labels.shape[0] != data.shape[0]:
            raise ShapeMismatchError("y must have one label per sequence")
        self.classes_ = np.unique(labels)
        centroids = np.empty((self.classes_.shape[0], data.shape[1]))
        for idx, cls in enumerate(self.classes_):
            members = data[labels == cls]
            reference = members.mean(axis=0)
            centroid = reference
            for _ in range(self.refinements):
                centroid = shape_extraction(members, reference=centroid)
            centroids[idx] = centroid
        self.centroids_ = centroids
        return self

    def _check_fitted(self) -> np.ndarray:
        if self.centroids_ is None:
            raise NotFittedError(
                "NearestShapeCentroid must be fitted before predicting"
            )
        return self.centroids_

    def decision_distances(self, X) -> np.ndarray:
        """``(n, n_classes)`` SBD of every query to every class centroid.

        One :func:`~repro.core._fft_batch.sbd_to_centroids` pass — the
        chunked batched kernel shared with k-Shape and the serving layer —
        replaces the former per-class cross-correlation loop; each cell is
        numerically identical.
        """
        centroids = self._check_fitted()
        data = as_dataset(X, "X")
        if data.shape[1] != centroids.shape[1]:
            raise ShapeMismatchError(
                "query length does not match the training length"
            )
        m = data.shape[1]
        fft_len = fft_len_for(m)
        fft_X = rfft_batch(data, fft_len)
        norms = np.linalg.norm(data, axis=1)
        dists, _ = sbd_to_centroids(fft_X, norms, centroids, m, fft_len)
        return dists

    def predict(self, X) -> np.ndarray:
        """Label each query with the class of its closest shape centroid."""
        assert self.classes_ is not None or self._check_fitted() is not None
        dists = self.decision_distances(X)
        return self.classes_[np.argmin(dists, axis=1)]

    def score(self, X, y) -> float:
        """Mean accuracy on labeled data."""
        truth = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == truth))
