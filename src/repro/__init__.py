"""repro: a full reproduction of "k-Shape: Efficient and Accurate Clustering
of Time Series" (Paparrizos & Gravano, SIGMOD 2015).

The package implements the paper's primary contribution — the shape-based
distance (SBD), the shape-extraction centroid method, and the k-Shape
clustering algorithm — together with every baseline and substrate its
evaluation depends on: ED/DTW/cDTW/LB_Keogh distances, DBA/NLAAF/PSA/KSC
averaging, k-means variants, PAM, hierarchical and spectral clustering,
1-NN classification, Rand-Index evaluation, Wilcoxon/Friedman/Nemenyi
statistics, and a seeded synthetic stand-in for the UCR archive.

Quickstart
----------
>>> from repro import KShape, load_dataset, rand_index
>>> dataset = load_dataset("ECGFiveDays-syn")
>>> model = KShape(n_clusters=dataset.n_classes, random_state=0).fit(dataset.X)
>>> score = rand_index(dataset.y, model.labels_)
"""

from .clustering import (
    DBSCAN,
    KDBA,
    KSC,
    DensityPeaks,
    FuzzyCShapes,
    Hierarchical,
    KMedoids,
    SpectralClustering,
    TimeSeriesKMeans,
    UShapeletClustering,
    k_avg_dtw,
    k_avg_ed,
    k_avg_sbd,
)
from .clustering.base import ClusterResult
from .classification import (
    NearestShapeCentroid,
    leave_one_out_accuracy,
    one_nn_accuracy,
    one_nn_classify,
    tune_cdtw_window,
)
from .core import (
    ConstrainedKShape,
    KShape,
    MiniBatchKShape,
    align_cluster,
    cross_correlation,
    kshape,
    ncc,
    ncc_max,
    sbd,
    sbd_with_alignment,
    shape_extraction,
)
from .datasets import (
    Dataset,
    list_datasets,
    load_archive,
    load_dataset,
    load_ucr_dataset,
    make_cbf,
    make_ecg_five_days,
)
from .distances import (
    NeighborEngine,
    PruningStats,
    cascade,
    cdtw,
    dtw,
    dtw_batch,
    dtw_path,
    dtw_path_batch,
    elastic_batch,
    euclidean,
    get_distance,
    keogh_envelope,
    ksc_distance,
    lb_keogh,
    lb_keogh_max,
    lb_kim,
    lb_paa,
    lb_yi,
    list_distances,
    pairwise_distances,
    pruned_medoid,
    register_distance,
)
from .evaluation import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
    rand_index,
)
from .exceptions import (
    ArtifactError,
    ChecksumError,
    ConvergenceWarning,
    EmptyInputError,
    InvalidParameterError,
    NotFittedError,
    ProfileChecksumError,
    ProfileError,
    ProfileSchemaError,
    QueueClosedError,
    RegistryError,
    ReproError,
    SchemaVersionError,
    ShapeMismatchError,
    UnknownNameError,
)
from .parallel import (
    get_executor,
    list_executors,
    parallel_map,
    register_executor,
)
from .preprocessing import minmax_scale, zscore
from .search import CentroidIndex, IndexStats
from .serving import (
    CentroidMaintainer,
    DriftCycleReport,
    DriftReport,
    FleetStats,
    MicroBatchQueue,
    ModelRegistry,
    Prediction,
    PromotionReport,
    ServingStats,
    ShapeFleet,
    ShapePredictor,
    ShardRouter,
    SwapReport,
    describe_artifact,
    load_model,
    save_model,
)
from .tuning import HardwareProfile
from .stats import (
    compare_to_baseline,
    friedman_test,
    nemenyi_groups,
    nemenyi_test,
    wilcoxon_signed_rank,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "KShape",
    "MiniBatchKShape",
    "ConstrainedKShape",
    "kshape",
    "sbd",
    "sbd_with_alignment",
    "shape_extraction",
    "align_cluster",
    "cross_correlation",
    "ncc",
    "ncc_max",
    # distances
    "euclidean",
    "dtw",
    "cdtw",
    "dtw_path",
    "dtw_path_batch",
    "dtw_batch",
    "elastic_batch",
    "lb_keogh",
    "lb_kim",
    "lb_yi",
    "lb_keogh_max",
    "lb_paa",
    "cascade",
    "keogh_envelope",
    "NeighborEngine",
    "PruningStats",
    "pruned_medoid",
    # candidate routing
    "CentroidIndex",
    "IndexStats",
    "ksc_distance",
    "get_distance",
    "list_distances",
    "register_distance",
    "pairwise_distances",
    # parallel execution
    "get_executor",
    "list_executors",
    "parallel_map",
    "register_executor",
    # hardware tuning
    "HardwareProfile",
    # clustering
    "TimeSeriesKMeans",
    "k_avg_ed",
    "k_avg_sbd",
    "k_avg_dtw",
    "KDBA",
    "KSC",
    "KMedoids",
    "Hierarchical",
    "SpectralClustering",
    "DBSCAN",
    "DensityPeaks",
    "FuzzyCShapes",
    "UShapeletClustering",
    "NearestShapeCentroid",
    "ClusterResult",
    # classification & evaluation
    "one_nn_classify",
    "one_nn_accuracy",
    "leave_one_out_accuracy",
    "tune_cdtw_window",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    # stats
    "wilcoxon_signed_rank",
    "friedman_test",
    "nemenyi_test",
    "nemenyi_groups",
    "compare_to_baseline",
    # datasets
    "Dataset",
    "list_datasets",
    "load_dataset",
    "load_archive",
    "load_ucr_dataset",
    "make_cbf",
    "make_ecg_five_days",
    # preprocessing
    "zscore",
    "minmax_scale",
    # serving
    "save_model",
    "load_model",
    "describe_artifact",
    "ShapePredictor",
    "Prediction",
    "MicroBatchQueue",
    "ServingStats",
    "CentroidMaintainer",
    "DriftReport",
    # fleet serving
    "ModelRegistry",
    "ShardRouter",
    "ShapeFleet",
    "FleetStats",
    "SwapReport",
    "PromotionReport",
    "DriftCycleReport",
    # exceptions
    "ReproError",
    "ShapeMismatchError",
    "EmptyInputError",
    "InvalidParameterError",
    "ConvergenceWarning",
    "NotFittedError",
    "UnknownNameError",
    "ArtifactError",
    "SchemaVersionError",
    "ChecksumError",
    "RegistryError",
    "QueueClosedError",
    "ProfileError",
    "ProfileSchemaError",
    "ProfileChecksumError",
]
