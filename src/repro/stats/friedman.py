"""Friedman test for comparing multiple methods over multiple datasets.

(Friedman [23]; used in paper Section 4 following Demšar [17].) The test
checks the null hypothesis that all ``k`` methods perform equivalently, by
comparing their average ranks across ``N`` datasets. When the null is
rejected, the post-hoc Nemenyi test (:mod:`repro.stats.nemenyi`) locates
which methods differ.

Both the classic chi-square statistic and the less conservative
Iman-Davenport F correction are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2, f as f_dist

from ..exceptions import InvalidParameterError
from .ranking import rank_rows

__all__ = ["FriedmanResult", "friedman_test"]


@dataclass
class FriedmanResult:
    """Result of a Friedman test.

    Attributes
    ----------
    statistic:
        The chi-square Friedman statistic.
    p_value:
        p-value of the chi-square form.
    iman_davenport:
        The Iman-Davenport F statistic derived from ``statistic``.
    iman_davenport_p_value:
        p-value of the F form.
    average_ranks:
        ``(k,)`` mean rank of each method (rank 1 = best).
    n_datasets, n_methods:
        Dimensions of the comparison.
    """

    statistic: float
    p_value: float
    iman_davenport: float
    iman_davenport_p_value: float
    average_ranks: np.ndarray
    n_datasets: int
    n_methods: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject the all-equivalent null at level ``alpha`` (paper: 0.05)."""
        return self.p_value < alpha


def friedman_test(scores, higher_is_better: bool = True) -> FriedmanResult:
    """Friedman test over a ``(datasets, methods)`` score matrix.

    Raises
    ------
    InvalidParameterError
        With fewer than 2 methods or fewer than 2 datasets.
    """
    ranks = rank_rows(scores, higher_is_better=higher_is_better)
    N, k = ranks.shape
    if k < 2 or N < 2:
        raise InvalidParameterError(
            f"Friedman test needs >= 2 methods and >= 2 datasets, got k={k}, N={N}"
        )
    avg = ranks.mean(axis=0)
    chi2_f = 12.0 * N / (k * (k + 1)) * (np.sum(avg**2) - k * (k + 1) ** 2 / 4.0)
    p_chi2 = float(chi2.sf(chi2_f, k - 1))
    denom = N * (k - 1) - chi2_f
    if denom <= 0:
        # Degenerate: perfect agreement of ranks; F statistic diverges.
        f_stat = float("inf")
        p_f = 0.0
    else:
        f_stat = (N - 1) * chi2_f / denom
        p_f = float(f_dist.sf(f_stat, k - 1, (k - 1) * (N - 1)))
    return FriedmanResult(
        statistic=float(chi2_f),
        p_value=p_chi2,
        iman_davenport=float(f_stat),
        iman_davenport_p_value=p_f,
        average_ranks=avg,
        n_datasets=N,
        n_methods=k,
    )
