"""Pairwise method-vs-baseline comparison rows (paper Tables 2, 3, 4).

Each of the paper's comparison tables reports, for every method against a
baseline (ED for Table 2; k-AVG+ED for Tables 3 and 4):

* the number of datasets where the method is better / equal / worse
  (the ">", "=", "<" columns);
* whether the method beats the baseline with statistical significance
  ("Better"), or the baseline beats it ("Worse") — via the Wilcoxon
  signed-rank test at 99% confidence;
* the method's average score across datasets.

:func:`compare_to_baseline` builds those rows from per-dataset score
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from ..exceptions import EmptyInputError, ShapeMismatchError
from .wilcoxon import wilcoxon_signed_rank

__all__ = ["ComparisonRow", "compare_to_baseline"]


@dataclass
class ComparisonRow:
    """One table row: a method compared to the baseline over all datasets."""

    name: str
    wins: int
    ties: int
    losses: int
    significantly_better: bool
    significantly_worse: bool
    mean_score: float
    p_value: float

    def as_dict(self) -> dict:
        return {
            ">": self.wins,
            "=": self.ties,
            "<": self.losses,
            "Better": self.significantly_better,
            "Worse": self.significantly_worse,
            "Mean": self.mean_score,
            "p": self.p_value,
        }


def compare_to_baseline(
    scores: Mapping[str, Sequence[float]],
    baseline: str,
    alpha: float = 0.01,
    tie_tolerance: float = 0.0,
) -> List[ComparisonRow]:
    """Build comparison rows for every method against ``baseline``.

    Parameters
    ----------
    scores:
        Mapping of method name to its per-dataset score vector; all vectors
        must share the baseline's length and dataset order.
    baseline:
        Key in ``scores`` every other method is compared to.
    alpha:
        Wilcoxon significance level (paper: 0.01, i.e. 99% confidence).
    tie_tolerance:
        Score differences with absolute value <= this count as ties
        (useful when scores are averages over runs).

    Returns
    -------
    list of ComparisonRow
        One row per non-baseline method, in the mapping's iteration order.
    """
    if baseline not in scores:
        raise EmptyInputError(f"baseline {baseline!r} missing from scores")
    base = np.asarray(scores[baseline], dtype=np.float64)
    rows: List[ComparisonRow] = []
    for name, values in scores.items():
        if name == baseline:
            continue
        vec = np.asarray(values, dtype=np.float64)
        if vec.shape != base.shape:
            raise ShapeMismatchError(
                f"method {name!r} has {vec.shape[0]} scores, baseline has "
                f"{base.shape[0]}"
            )
        diff = vec - base
        wins = int(np.sum(diff > tie_tolerance))
        losses = int(np.sum(diff < -tie_tolerance))
        ties = int(diff.shape[0] - wins - losses)
        if np.allclose(vec, base):
            better = worse = False
            p = 1.0
        else:
            result = wilcoxon_signed_rank(vec, base)
            p = result.p_value
            rejected = result.significant(alpha)
            better = rejected and result.median_difference > 0
            # A zero median with significance is resolved by the win counts.
            if rejected and result.median_difference == 0:
                better = wins > losses
            worse = rejected and not better
        rows.append(
            ComparisonRow(
                name=name,
                wins=wins,
                ties=ties,
                losses=losses,
                significantly_better=better,
                significantly_worse=worse,
                mean_score=float(vec.mean()),
                p_value=p,
            )
        )
    return rows
