"""Bootstrap confidence intervals for paired method comparisons.

Complements the rank-based tests (Wilcoxon/Friedman/Nemenyi) with effect
*sizes*: given per-dataset scores of two methods, how large is the mean
difference and how certain is its sign? Percentile bootstrap over datasets
— resampling datasets with replacement, as is standard for
multiple-dataset benchmark comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .._validation import as_rng
from ..exceptions import EmptyInputError, InvalidParameterError, ShapeMismatchError

__all__ = ["BootstrapResult", "bootstrap_mean_ci", "bootstrap_difference"]


@dataclass
class BootstrapResult:
    """A bootstrap estimate with its percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def excludes_zero(self) -> bool:
        """True when the CI lies entirely on one side of zero."""
        return self.lower > 0.0 or self.upper < 0.0


def _check_vector(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.shape[0] == 0:
        raise EmptyInputError(f"{name} must not be empty")
    return arr


def bootstrap_mean_ci(
    values,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng=None,
) -> BootstrapResult:
    """Percentile bootstrap CI for the mean of a score vector."""
    arr = _check_vector(values, "values")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    generator = as_rng(rng)
    n = arr.shape[0]
    idx = generator.integers(0, n, size=(n_resamples, n))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(arr.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_difference(
    scores_a,
    scores_b,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng=None,
) -> BootstrapResult:
    """Percentile bootstrap CI for the paired mean difference ``a - b``.

    Datasets are resampled jointly (paired), preserving the per-dataset
    coupling the Wilcoxon test also relies on.
    """
    a = _check_vector(scores_a, "scores_a")
    b = _check_vector(scores_b, "scores_b")
    if a.shape[0] != b.shape[0]:
        raise ShapeMismatchError(
            f"paired scores differ in length: {a.shape[0]} vs {b.shape[0]}"
        )
    return bootstrap_mean_ci(
        a - b, confidence=confidence, n_resamples=n_resamples, rng=rng
    )
