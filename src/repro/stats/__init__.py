"""Statistical analysis: Wilcoxon, Friedman, Nemenyi, rankings (Section 4)."""

from .bootstrap import BootstrapResult, bootstrap_difference, bootstrap_mean_ci
from .comparison import ComparisonRow, compare_to_baseline
from .friedman import FriedmanResult, friedman_test
from .nemenyi import (
    NemenyiResult,
    critical_difference,
    nemenyi_groups,
    nemenyi_test,
)
from .ranking import average_ranks, rank_rows
from .wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "wilcoxon_signed_rank",
    "WilcoxonResult",
    "friedman_test",
    "FriedmanResult",
    "nemenyi_test",
    "NemenyiResult",
    "nemenyi_groups",
    "critical_difference",
    "rank_rows",
    "average_ranks",
    "compare_to_baseline",
    "ComparisonRow",
    "bootstrap_mean_ci",
    "bootstrap_difference",
    "BootstrapResult",
]
