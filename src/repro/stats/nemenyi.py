"""Post-hoc Nemenyi test (Nemenyi [57]; paper Section 4, Figures 6/8/9).

After a significant Friedman test, the Nemenyi test declares two methods
different when their average ranks differ by at least the **critical
difference**

    CD = q_alpha * sqrt(k (k + 1) / (6 N)),

where ``q_alpha`` is the Studentized-range quantile divided by sqrt(2)
(Demšar [17]). The paper's "wiggly line" figures connect all methods whose
rank differences fall below the CD; :func:`nemenyi_groups` reproduces those
groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from .ranking import average_ranks

__all__ = ["critical_difference", "NemenyiResult", "nemenyi_test", "nemenyi_groups"]

# Critical values q_alpha for the two-tailed Nemenyi test (Demšar 2006,
# Table 5): the Studentized range statistic at infinite degrees of freedom
# divided by sqrt(2), indexed by the number of methods k.
_Q_ALPHA = {
    0.05: {
        2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949,
        8: 3.031, 9: 3.102, 10: 3.164, 11: 3.219, 12: 3.268, 13: 3.313,
        14: 3.354, 15: 3.391, 16: 3.426, 17: 3.458, 18: 3.489, 19: 3.517,
        20: 3.544,
    },
    0.01: {
        2: 2.576, 3: 2.913, 4: 3.113, 5: 3.255, 6: 3.364, 7: 3.452,
        8: 3.526, 9: 3.590, 10: 3.646, 11: 3.696, 12: 3.741, 13: 3.781,
        14: 3.818, 15: 3.853, 16: 3.884, 17: 3.914, 18: 3.941, 19: 3.967,
        20: 3.992,
    },
}


def critical_difference(k: int, n_datasets: int, alpha: float = 0.05) -> float:
    """Nemenyi critical difference for ``k`` methods over ``n_datasets``.

    Raises
    ------
    InvalidParameterError
        For unsupported ``alpha`` (only 0.05 and 0.01 are tabulated) or
        ``k`` outside 2..20.
    """
    if alpha not in _Q_ALPHA:
        raise InvalidParameterError(
            f"alpha must be 0.05 or 0.01 (tabulated), got {alpha}"
        )
    table = _Q_ALPHA[alpha]
    if k not in table:
        raise InvalidParameterError(
            f"critical values are tabulated for 2 <= k <= 20, got k={k}"
        )
    if n_datasets < 1:
        raise InvalidParameterError("n_datasets must be >= 1")
    return table[k] * np.sqrt(k * (k + 1) / (6.0 * n_datasets))


@dataclass
class NemenyiResult:
    """Result of the Nemenyi post-hoc comparison.

    Attributes
    ----------
    average_ranks:
        ``(k,)`` mean ranks (rank 1 = best).
    critical_difference:
        The CD at the requested alpha.
    significant:
        Boolean ``(k, k)`` matrix; ``[i, j]`` is True when methods ``i`` and
        ``j`` differ significantly.
    """

    average_ranks: np.ndarray
    critical_difference: float
    significant: np.ndarray


def nemenyi_test(
    scores, higher_is_better: bool = True, alpha: float = 0.05
) -> NemenyiResult:
    """Pairwise Nemenyi comparison from a ``(datasets, methods)`` score matrix."""
    S = np.asarray(scores, dtype=np.float64)
    avg = average_ranks(S, higher_is_better=higher_is_better)
    N, k = S.shape
    cd = critical_difference(k, N, alpha=alpha)
    diff = np.abs(avg[:, None] - avg[None, :])
    significant = diff > cd
    np.fill_diagonal(significant, False)
    return NemenyiResult(
        average_ranks=avg, critical_difference=cd, significant=significant
    )


def nemenyi_groups(
    scores,
    names: Sequence[str],
    higher_is_better: bool = True,
    alpha: float = 0.05,
) -> List[Tuple[str, ...]]:
    """Maximal groups of methods not significantly different from each other.

    Reproduces the "wiggly line" of the paper's rank figures: each returned
    tuple lists (by name, best rank first) a maximal run of methods whose
    pairwise rank differences all fall within the critical difference.
    """
    S = np.asarray(scores, dtype=np.float64)
    if S.shape[1] != len(names):
        raise InvalidParameterError(
            "names must have one entry per method (score column)"
        )
    result = nemenyi_test(S, higher_is_better=higher_is_better, alpha=alpha)
    order = np.argsort(result.average_ranks)
    ranks = result.average_ranks[order]
    sorted_names = [names[i] for i in order]
    groups: List[Tuple[str, ...]] = []
    k = len(names)
    for start in range(k):
        end = start
        while end + 1 < k and ranks[end + 1] - ranks[start] <= result.critical_difference:
            end += 1
        group = tuple(sorted_names[start : end + 1])
        # Keep only maximal groups (not contained in a previous one).
        if not groups or not set(group).issubset(set(groups[-1])):
            groups.append(group)
    return groups
