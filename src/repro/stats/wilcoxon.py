"""Wilcoxon signed-rank test (Wilcoxon [84]; paper Section 4).

The paper analyzes every pairwise comparison of algorithms over the 48
datasets with the Wilcoxon test at a 99% confidence level, preferring it to
the t-test because it does not assume commensurability of differences [17].

This implementation uses the normal approximation with tie correction and
the standard zero-difference handling (discard zeros), which matches common
statistical software for the dataset counts involved (n in the tens).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from ..exceptions import EmptyInputError, ShapeMismatchError

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank"]


@dataclass
class WilcoxonResult:
    """Result of a Wilcoxon signed-rank test.

    Attributes
    ----------
    statistic:
        ``W`` — the smaller of the positive- and negative-rank sums.
    p_value:
        Two-sided p-value (normal approximation).
    n_used:
        Sample pairs remaining after zero differences are discarded.
    median_difference:
        Median of the (non-zero) differences ``x - y``; its sign says which
        side tends to win.
    """

    statistic: float
    p_value: float
    n_used: int
    median_difference: float

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the two-sided test rejects at level ``alpha`` (paper: 0.01)."""
        return self.p_value < alpha


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.shape[0])
    sorted_vals = values[order]
    i = 0
    while i < values.shape[0]:
        j = i
        while j + 1 < values.shape[0] and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def wilcoxon_signed_rank(x, y) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test on paired samples ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Equal-length 1-D arrays of paired measurements (e.g. per-dataset
        accuracies of two methods).

    Returns
    -------
    WilcoxonResult

    Raises
    ------
    EmptyInputError
        If all differences are zero (the test is undefined); callers should
        treat identical methods as "not significantly different".
    """
    a = np.asarray(x, dtype=np.float64).ravel()
    b = np.asarray(y, dtype=np.float64).ravel()
    if a.shape[0] != b.shape[0]:
        raise ShapeMismatchError(
            f"paired samples differ in length: {a.shape[0]} vs {b.shape[0]}"
        )
    diff = a - b
    diff = diff[diff != 0.0]
    n = diff.shape[0]
    if n == 0:
        raise EmptyInputError(
            "all paired differences are zero; Wilcoxon test is undefined"
        )
    abs_ranks = _rank_with_ties(np.abs(diff))
    w_plus = float(abs_ranks[diff > 0].sum())
    w_minus = float(abs_ranks[diff < 0].sum())
    statistic = min(w_plus, w_minus)
    mean_w = n * (n + 1) / 4.0
    # Tie correction for the variance.
    _, counts = np.unique(np.abs(diff), return_counts=True)
    tie_term = np.sum(counts**3 - counts) / 48.0
    var_w = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term
    if var_w <= 0:
        p_value = 1.0
    else:
        # Continuity correction of 0.5 toward the mean.
        z = (statistic - mean_w + 0.5) / np.sqrt(var_w)
        p_value = float(min(1.0, 2.0 * norm.cdf(z)))
    return WilcoxonResult(
        statistic=statistic,
        p_value=p_value,
        n_used=n,
        median_difference=float(np.median(diff)),
    )
