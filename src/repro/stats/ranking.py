"""Average-rank computation over multiple datasets (Demšar [17]).

Figures 6, 8, and 9 of the paper rank each method on each dataset (rank 1 =
best) and compare methods by their ranks averaged across datasets. Ties
within a dataset share their average rank, as the Friedman test requires.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyInputError, ShapeMismatchError

__all__ = ["rank_rows", "average_ranks"]


def rank_rows(scores, higher_is_better: bool = True) -> np.ndarray:
    """Per-dataset ranks of methods from a ``(datasets, methods)`` score matrix.

    Parameters
    ----------
    scores:
        ``(N, k)`` matrix; row = dataset, column = method.
    higher_is_better:
        When True (accuracy, Rand Index) the best score gets rank 1; set to
        False for costs such as runtime.

    Returns
    -------
    numpy.ndarray
        ``(N, k)`` matrix of 1-based average ranks.
    """
    S = np.asarray(scores, dtype=np.float64)
    if S.ndim != 2:
        raise ShapeMismatchError("scores must be a 2-D (datasets, methods) matrix")
    if S.size == 0:
        raise EmptyInputError("scores must not be empty")
    keyed = -S if higher_is_better else S
    N, k = S.shape
    ranks = np.empty((N, k))
    for row in range(N):
        vals = keyed[row]
        order = np.argsort(vals, kind="mergesort")
        r = np.empty(k)
        i = 0
        sorted_vals = vals[order]
        while i < k:
            j = i
            while j + 1 < k and sorted_vals[j + 1] == sorted_vals[i]:
                j += 1
            r[order[i : j + 1]] = (i + j) / 2.0 + 1.0
            i = j + 1
        ranks[row] = r
    return ranks


def average_ranks(scores, higher_is_better: bool = True) -> np.ndarray:
    """Mean rank of each method across datasets (the x-axis of Figures 6/8/9)."""
    return rank_rows(scores, higher_is_better=higher_is_better).mean(axis=0)
