"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type to handle any library-originated failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeMismatchError(ReproError, ValueError):
    """Two sequences (or arrays) have incompatible shapes."""


class EmptyInputError(ReproError, ValueError):
    """An operation received an empty sequence or an empty collection."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its valid domain (e.g., k < 1, window < 0)."""


class ConvergenceWarning(UserWarning):
    """An iterative procedure hit its iteration cap before converging."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring a prior ``fit`` was called too early."""


class UnknownNameError(ReproError, KeyError):
    """A registry lookup (distance, dataset, method) failed."""


class ArtifactError(ReproError, ValueError):
    """A model artifact could not be written, read, or reconstructed."""


class SchemaVersionError(ArtifactError):
    """An artifact's manifest declares an unsupported schema version."""


class ChecksumError(ArtifactError):
    """An artifact's payload does not match its recorded checksum."""


class QueueClosedError(InvalidParameterError):
    """A request was submitted to a serving queue after it was closed."""


class RegistryError(ArtifactError):
    """A model registry's index could not be read, written, or validated."""


class ProfileError(ReproError, ValueError):
    """A hardware profile could not be written, read, or validated."""


class ProfileSchemaError(ProfileError):
    """A hardware profile declares an unsupported schema version."""


class ProfileChecksumError(ProfileError):
    """A hardware profile's body does not match its recorded checksum."""
