"""Figure 7 — per-dataset Rand Index scatter: k-Shape vs KSC and vs k-DBA.

Expected shape: the majority of points above the diagonal in both panels
(the paper: 30/48 vs KSC, 35/48 vs k-DBA, both statistically significant).
"""

from conftest import write_report
from repro.harness import format_scatter


def test_fig7_scatter(benchmark, kmeans_variants_eval):
    names, scores, _ = kmeans_variants_eval

    from repro.core import shape_extraction
    from repro.datasets import load_dataset

    ds = load_dataset(names[0])
    benchmark(shape_extraction, ds.X[:16], ds.X[0])

    report = format_scatter(
        scores["KSC"], scores["k-Shape"], "KSC Rand Index",
        "k-Shape Rand Index",
        title="Figure 7a: k-Shape vs KSC (one point per dataset)",
    )
    report += "\n\n" + format_scatter(
        scores["k-DBA"], scores["k-Shape"], "k-DBA Rand Index",
        "k-Shape Rand Index",
        title="Figure 7b: k-Shape vs k-DBA (one point per dataset)",
    )
    per_dataset = "\n".join(
        f"  {n:20s} KSC={scores['KSC'][i]:.3f} k-DBA={scores['k-DBA'][i]:.3f} "
        f"k-Shape={scores['k-Shape'][i]:.3f}"
        for i, n in enumerate(names)
    )
    report += "\n\nPer-dataset Rand Index:\n" + per_dataset
    write_report("fig7_kshape_scatter", report)

    wins = sum(k >= o for k, o in zip(scores["k-Shape"], scores["KSC"]))
    assert wins >= len(names) / 2
