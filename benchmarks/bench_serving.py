"""Micro-benchmark: serving-path latency and throughput.

The serving subsystem (:mod:`repro.serving`) answers assignment queries
against a fitted model with centroid rFFTs precomputed once at load time
and all queries pushed through one batched
:func:`~repro.core._fft_batch.ncc_c_max_multi` call. This bench fits a
k-Shape model on a CBF workload, saves and reloads it through the artifact
layer, and times three ways of labeling a query stream:

* **naive** — per-(query, centroid) :func:`repro.sbd` calls, the loop a
  caller without the serving layer would write;
* **per-series** — one :class:`repro.serving.ShapePredictor` call per
  query (single-request latency);
* **batched** — one predictor call over the whole stream, plus the
  :class:`repro.serving.MicroBatchQueue` coalescing the same stream in
  ``max_batch`` chunks.

All three must produce **identical labels**; the report (speedups, mean
single-series latency, queue occupancy) lands in ``BENCH_serving.json``
at the repo root.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_serving.py

scaled down (CI)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

or through pytest (the full-size run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -m slow
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import KShape, sbd
from repro.datasets import make_cbf
from repro.preprocessing import zscore
from repro.serving import MicroBatchQueue, ShapePredictor, save_model

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serving.json"

BENCH_N_FIT = int(os.environ.get("REPRO_BENCH_SERVE_NFIT", "90"))
BENCH_N_QUERIES = int(os.environ.get("REPRO_BENCH_SERVE_NQUERIES", "600"))
BENCH_M = int(os.environ.get("REPRO_BENCH_SERVE_M", "256"))
BENCH_K = int(os.environ.get("REPRO_BENCH_SERVE_K", "3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SERVE_SEED", "13"))
BENCH_MAX_BATCH = int(os.environ.get("REPRO_BENCH_SERVE_MAXBATCH", "32"))


def make_workload(n_fit: int, n_queries: int, m: int, seed: int):
    """A z-normalized CBF fit set plus a held-out query stream.

    ``make_cbf`` emits ``3 * n_per_class`` rows grouped by class, so the
    pool is shuffled before slicing to keep all classes in both splits.
    """
    rng = np.random.default_rng(seed)
    total = n_fit + n_queries
    X, _ = make_cbf(-(-total // 3), m, rng)  # ceil division per class
    X = zscore(X[rng.permutation(X.shape[0])[:total]])
    return X[:n_fit], X[n_fit:]


def naive_labels(queries: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """The loop a caller without the serving layer would write."""
    labels = np.empty(queries.shape[0], dtype=int)
    for i, q in enumerate(queries):
        labels[i] = int(np.argmin([sbd(q, c) for c in centroids]))
    return labels


def run_benchmark(
    n_fit: int = BENCH_N_FIT,
    n_queries: int = BENCH_N_QUERIES,
    m: int = BENCH_M,
    k: int = BENCH_K,
    seed: int = BENCH_SEED,
    max_batch: int = BENCH_MAX_BATCH,
    output: Path | None = None,
    artifact_dir: Path | None = None,
) -> dict:
    X_fit, queries = make_workload(n_fit, n_queries, m, seed)
    model = KShape(n_clusters=k, random_state=seed).fit(X_fit)

    # Serve from a persisted artifact, the deployment path under test.
    if artifact_dir is None:
        import tempfile

        artifact_dir = Path(tempfile.mkdtemp()) / "model"
    start = time.perf_counter()
    save_model(model, str(artifact_dir))
    save_s = time.perf_counter() - start
    start = time.perf_counter()
    predictor = ShapePredictor.from_artifact(str(artifact_dir))
    load_s = time.perf_counter() - start

    start = time.perf_counter()
    reference = naive_labels(queries, model.centroids_)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    per_series = np.array(
        [predictor.predict(q.reshape(1, -1))[0] for q in queries]
    )
    per_series_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = predictor.predict(queries)
    batched_s = time.perf_counter() - start

    queue = MicroBatchQueue(predictor, max_batch=max_batch, autostart=False)
    futures = [queue.submit(q) for q in queries]
    start = time.perf_counter()
    queue.flush()
    queued_s = time.perf_counter() - start
    queued = np.array([f.result()[0] for f in futures])
    stats = queue.stats()

    for name, labels in (
        ("per_series", per_series),
        ("batched", batched),
        ("queued", queued),
    ):
        assert np.array_equal(labels, reference), (
            f"{name} serving labels diverged from the naive loop"
        )

    report = {
        "benchmark": "serving latency and throughput",
        "n_fit": n_fit,
        "n_queries": n_queries,
        "m": m,
        "k": k,
        "seed": seed,
        "artifact": {
            "save_s": round(save_s, 4),
            "load_s": round(load_s, 4),
        },
        "naive_loop": {
            "total_s": round(naive_s, 4),
            "queries_per_s": round(n_queries / max(naive_s, 1e-9), 1),
        },
        "per_series": {
            "total_s": round(per_series_s, 4),
            "mean_latency_ms": round(1e3 * per_series_s / n_queries, 4),
            "speedup_vs_naive": round(naive_s / max(per_series_s, 1e-9), 3),
        },
        "batched": {
            "total_s": round(batched_s, 4),
            "queries_per_s": round(n_queries / max(batched_s, 1e-9), 1),
            "speedup_vs_naive": round(naive_s / max(batched_s, 1e-9), 3),
        },
        "micro_batch_queue": {
            "max_batch": max_batch,
            "total_s": round(queued_s, 4),
            "speedup_vs_naive": round(naive_s / max(queued_s, 1e-9), 3),
            "batches": stats.batches,
            "mean_batch_size": round(stats.mean_batch_size, 2),
            "kernel_s": round(stats.kernel_s, 4),
            "p50_latency_ms": round(1e3 * stats.p50_latency_s, 4),
            "p99_latency_ms": round(1e3 * stats.p99_latency_s, 4),
            "max_queue_depth": stats.max_queue_depth,
            "queue_depth_after_drain": stats.queue_depth,
        },
        "labels_identical": True,
    }
    (OUTPUT if output is None else output).write_text(
        json.dumps(report, indent=2) + "\n"
    )
    return report


@pytest.mark.slow
def test_bench_serving_full():
    """Full-size benchmark; writes BENCH_serving.json at the repo root."""
    report = run_benchmark()
    assert report["labels_identical"]
    # The batched kernel must beat the per-(query, centroid) loop clearly.
    assert report["batched"]["speedup_vs_naive"] >= 3.0
    assert report["micro_batch_queue"]["speedup_vs_naive"] >= 1.0


def test_bench_serving_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_serving.json"
    )
    report = run_benchmark(
        n_fit=24, n_queries=40, m=64, k=2, seed=3, max_batch=8,
        artifact_dir=tmp_path / "model",
    )
    assert report["labels_identical"]
    queue = report["micro_batch_queue"]
    assert queue["batches"] == 5
    assert queue["mean_batch_size"] == 8.0
    assert queue["p99_latency_ms"] >= queue["p50_latency_ms"] > 0.0
    assert queue["max_queue_depth"] == 40
    assert queue["queue_depth_after_drain"] == 0
    assert (tmp_path / "BENCH_serving.json").exists()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # CI-sized pass; keep the committed full-size JSON untouched.
        import tempfile

        tmp = Path(tempfile.mkdtemp())
        print(json.dumps(
            run_benchmark(n_fit=24, n_queries=40, m=64, k=2, seed=3,
                          max_batch=8, output=tmp / "BENCH_serving.json",
                          artifact_dir=tmp / "model"),
            indent=2,
        ))
    else:
        print(json.dumps(run_benchmark(), indent=2))
