"""Appendix A (Figures 10-11) — cross-correlation variants under
different time-series normalizations.

Regenerates the appendix study: starting from "unnormalized" data (each
sequence multiplied by a random amplitude, as the paper constructs it),
compare the 1-NN accuracy of SBD (NCCc), NCCu, and NCCb under three data
normalizations: OptimalScaling, ValuesBetween0-1, and z-normalization.

Expected shape: SBD dominates NCCu and NCCb under OptimalScaling and
ValuesBetween0-1, and matches NCCb under z-normalization — making the
coefficient normalization the most robust choice.
"""

import numpy as np

from conftest import bench_datasets, write_report
from repro.classification import one_nn_accuracy
from repro.core import ncc
from repro.harness import format_table
from repro.preprocessing import (
    apply_optimal_scaling,
    minmax_scale,
    random_amplitude_distortion,
    zscore,
)

# A compact panel keeps the 9-configuration sweep fast.
DATASETS = ["SineSquare", "FreqSines", "PulsePosition", "Ramps",
            "ECGFiveDays-syn", "CBF"]


def _ncc_distance(norm, optimal_scaling=False):
    """1 - max NCC_<norm>, optionally with per-pair optimal scaling."""

    def fn(x, y):
        if optimal_scaling:
            y = apply_optimal_scaling(x, y)
            if not np.any(y):
                return 1.0
        return 1.0 - float(ncc(x, y, norm=norm).max())

    return fn


def test_fig10_11_cc_variants(benchmark):
    datasets = bench_datasets(DATASETS)
    rng = np.random.default_rng(2015)

    benchmark(_ncc_distance("c"), datasets[0].X[0], datasets[0].X[1])

    normalizations = {
        "OptimalScaling": ("raw", True),
        "ValuesBetween0-1": ("minmax", False),
        "z-normalization": ("zscore", False),
    }
    variants = ("c", "u", "b")
    means = {}
    rows = []
    for norm_name, (prep, opt_scale) in normalizations.items():
        accs = {v: [] for v in variants}
        for ds in datasets:
            # Undo the archive's z-normalization by re-distorting amplitudes,
            # mirroring the paper's construction of unnormalized data.
            X_train = random_amplitude_distortion(ds.X_train, rng=rng)
            X_test = random_amplitude_distortion(ds.X_test, rng=rng)
            if prep == "minmax":
                X_train, X_test = minmax_scale(X_train), minmax_scale(X_test)
            elif prep == "zscore":
                X_train, X_test = zscore(X_train), zscore(X_test)
            for v in variants:
                acc = one_nn_accuracy(
                    X_train, ds.y_train, X_test, ds.y_test,
                    metric=_ncc_distance(v, optimal_scaling=opt_scale),
                )
                accs[v].append(acc)
        means[norm_name] = {v: float(np.mean(accs[v])) for v in variants}
        rows.append([
            norm_name,
            means[norm_name]["c"],
            means[norm_name]["u"],
            means[norm_name]["b"],
        ])
    report = format_table(
        ["Data normalization", "SBD (NCCc)", "NCCu", "NCCb"], rows,
        title=(
            "Figures 10-11 (Appendix A): cross-correlation variants under "
            f"time-series normalizations, {len(datasets)} datasets"
        ),
    )
    write_report("fig10_11_cc_variants", report)

    # Reproduction shape: the coefficient normalization is the most robust —
    # best or tied-best average accuracy under every normalization.
    for norm_name, by_variant in means.items():
        assert by_variant["c"] >= by_variant["u"] - 0.02, norm_name
        assert by_variant["c"] >= by_variant["b"] - 0.02, norm_name
