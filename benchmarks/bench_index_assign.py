"""Micro-benchmark: indexed assignment vs. the dense distance matrix.

Assignment (labeling ``n`` queries against ``k`` candidates) is the inner
loop of k-means-style clustering and 1-NN classification. The
:class:`repro.search.CentroidIndex` replaces the dense ``n x k`` scan
with a three-tier route — admissible sketch bounds, a cheap proxy ranking,
and a pair-listed exact tier — so only the pairs the bounds cannot
discard are confirmed. This bench times both paths on workload shapes
where the route matters:

* **(c)DTW** — the expensive metric the index is built for: the PAA
  sketch plus the vectorized LB_Keogh refine tier discard most pairs
  before any wavefront runs;
* **SBD (clustered)** — the honesty row: CBF classes share nearly
  identical magnitude spectra, the spectral bound cannot separate them,
  and the index degrades gracefully to ~dense speed via its escape
  hatch instead of losing;
* **SBD (diverse)** — spectrally heterogeneous traffic (mixed-frequency
  sinusoids, random walks, noise) where the same bound does prune.

Every exact row asserts ``argmins_identical`` against the dense argmin;
approximate rows report *measured* recall at the default knobs. A final
``one_nn`` row drives the other consumer — ``one_nn_classify`` over a
labeled training set — through the same dense/exact/approx comparison.

Timing protocol: the box this runs on shows ~2x wall-clock swings
between back-to-back runs, so variants are interleaved round-robin
within one process and each variant reports its **minimum** over the
rounds — never one variant timed after another in full.

Run standalone (full size, writes ``BENCH_index.json``)::

    PYTHONPATH=src python benchmarks/bench_index_assign.py

scaled down (CI)::

    PYTHONPATH=src python benchmarks/bench_index_assign.py --smoke

or through pytest (the full-size run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_index_assign.py -m slow
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np
import pytest

from repro.datasets import make_cbf
from repro.distances import cross_distances, sbd_matrix
from repro.preprocessing import zscore
from repro.search import CentroidIndex

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_index.json"

#: (name, metric, workload, k, n, m, reps). Ordered by growing n*k with the
#: (c)DTW row — the metric the index targets — as the largest config.
FULL_CONFIGS = [
    ("cdtw_small", "cdtw5", "cbf", 32, 300, 128, 3),
    ("sbd_clustered", "sbd", "cbf", 32, 2000, 128, 5),
    ("sbd_diverse", "sbd", "diverse", 64, 1000, 128, 5),
    ("cdtw_large", "cdtw5", "cbf", 96, 800, 128, 3),
]

SMOKE_CONFIGS = [
    ("cdtw_small", "cdtw5", "cbf", 8, 40, 48, 2),
    ("sbd_clustered", "sbd", "cbf", 8, 60, 48, 2),
    ("sbd_diverse", "sbd", "diverse", 8, 60, 48, 2),
    ("cdtw_large", "cdtw5", "cbf", 12, 60, 48, 2),
]


def make_workload(kind: str, k: int, n: int, m: int, seed: int):
    """``(candidates, queries)`` for one bench row."""
    rng = np.random.default_rng(seed)
    total = k + n
    if kind == "cbf":
        X, _ = make_cbf(-(-total // 3), m, rng)
        X = X[rng.permutation(X.shape[0])[:total]]
    else:  # spectrally diverse: sinusoids + random walks + noise
        t = np.arange(m)
        pool = []
        for _ in range(total):
            shape = rng.integers(3)
            if shape == 0:
                freq = rng.uniform(0.5, 20)
                pool.append(
                    np.sin(2 * np.pi * freq * t / m + rng.uniform(0, 6.28))
                )
            elif shape == 1:
                pool.append(np.cumsum(rng.standard_normal(m)))
            else:
                pool.append(rng.standard_normal(m))
        X = np.asarray(pool) + 0.05 * rng.standard_normal((total, m))
    X = zscore(X)
    return X[:k], X[k:]


def interleaved_minima(
    variants: Dict[str, Callable[[], object]], reps: int
) -> Dict[str, float]:
    """Best-of-``reps`` wall-clock per variant, measured round-robin.

    One full round runs every variant once before any variant runs again,
    so slow machine phases (page cache churn, frequency scaling) hit all
    variants alike instead of biasing whichever ran last.
    """
    best = {name: float("inf") for name in variants}
    for _ in range(reps):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def run_config(
    name: str,
    metric: str,
    workload: str,
    k: int,
    n: int,
    m: int,
    reps: int,
    seed: int = 7,
) -> dict:
    C, Q = make_workload(workload, k, n, m, seed)
    exact = CentroidIndex(C, metric=metric, mode="exact")
    approx = CentroidIndex(C, metric=metric, mode="approx")

    def dense() -> np.ndarray:
        if metric == "sbd":
            return sbd_matrix(Q, C)
        return cross_distances(Q, C, metric=metric)

    state: Dict[str, np.ndarray] = {}
    timings = interleaved_minima(
        {
            "dense": lambda: state.__setitem__(
                "ref", np.argmin(dense(), axis=1)
            ),
            "exact": lambda: state.__setitem__(
                "exact", exact.query_batch(Q)[0]
            ),
            "approx": lambda: state.__setitem__(
                "approx", approx.query_batch(Q)[0]
            ),
        },
        reps,
    )
    identical = bool(np.array_equal(state["exact"], state["ref"]))
    recall = float(np.mean(state["approx"] == state["ref"]))
    stats = exact.stats
    return {
        "config": name,
        "metric": metric,
        "workload": workload,
        "k": k,
        "n_queries": n,
        "m": m,
        "pairs": k * n,
        "reps": reps,
        "dense_s": round(timings["dense"], 4),
        "exact": {
            "total_s": round(timings["exact"], 4),
            "speedup_vs_dense": round(
                timings["dense"] / max(timings["exact"], 1e-9), 3
            ),
            "argmins_identical": identical,
            "sketch_prune_rate": round(stats.sketch_prune_rate, 4),
        },
        "approx": {
            "total_s": round(timings["approx"], 4),
            "speedup_vs_dense": round(
                timings["dense"] / max(timings["approx"], 1e-9), 3
            ),
            "recall": round(recall, 4),
        },
    }


def run_one_nn(
    k: int, n: int, m: int, reps: int, metric: str = "cdtw5", seed: int = 11
) -> dict:
    """1-NN classification routed through the index vs. the dense scan.

    The candidate set is a labeled *training set* here, not centroids —
    the other consumer of the router, with the same exactness contract.
    """
    from repro.classification import one_nn_classify

    train, queries = make_workload("cbf", k, n, m, seed)
    y_train = np.arange(k) % 3
    state: Dict[str, np.ndarray] = {}
    timings = interleaved_minima(
        {
            "dense": lambda: state.__setitem__(
                "ref", one_nn_classify(train, y_train, queries, metric=metric)
            ),
            "exact": lambda: state.__setitem__(
                "exact",
                one_nn_classify(
                    train, y_train, queries, metric=metric, index="exact"
                ),
            ),
            "approx": lambda: state.__setitem__(
                "approx",
                one_nn_classify(
                    train, y_train, queries, metric=metric, index="approx"
                ),
            ),
        },
        reps,
    )
    return {
        "config": "one_nn",
        "metric": metric,
        "n_train": k,
        "n_queries": n,
        "m": m,
        "dense_s": round(timings["dense"], 4),
        "exact": {
            "total_s": round(timings["exact"], 4),
            "speedup_vs_dense": round(
                timings["dense"] / max(timings["exact"], 1e-9), 3
            ),
            "predictions_identical": bool(
                np.array_equal(state["exact"], state["ref"])
            ),
        },
        "approx": {
            "total_s": round(timings["approx"], 4),
            "speedup_vs_dense": round(
                timings["dense"] / max(timings["approx"], 1e-9), 3
            ),
            "label_agreement": round(
                float(np.mean(state["approx"] == state["ref"])), 4
            ),
        },
    }


def run_benchmark(
    configs: Optional[List[tuple]] = None, output: Optional[Path] = None
) -> dict:
    rows = [run_config(*config) for config in (configs or FULL_CONFIGS)]
    small = configs is not None and configs is SMOKE_CONFIGS
    one_nn = (
        run_one_nn(12, 40, 48, 2) if small else run_one_nn(90, 400, 128, 3)
    )
    largest = max(rows, key=lambda r: r["pairs"])
    report = {
        "benchmark": "indexed assignment vs dense distance matrix",
        "timing": "interleaved round-robin, min over reps per variant",
        "configs": rows,
        "one_nn": one_nn,
        "largest_config": largest["config"],
        "largest_config_exact_speedup": largest["exact"]["speedup_vs_dense"],
        "all_exact_argmins_identical": all(
            r["exact"]["argmins_identical"] for r in rows
        ),
        # The recall guarantee is scoped to clustered traffic — the
        # workload approximate routing exists for. The diverse row's
        # recall is reported raw: near-neighbor ranking among pure-noise
        # rows survives no coarsening, and hiding that would oversell
        # the approximate mode (use exact mode for unstructured data).
        "min_approx_recall_clustered": min(
            r["approx"]["recall"] for r in rows if r["workload"] == "cbf"
        ),
        "approx_recall_diverse": min(
            (r["approx"]["recall"] for r in rows if r["workload"] != "cbf"),
            default=None,
        ),
    }
    (OUTPUT if output is None else output).write_text(
        json.dumps(report, indent=2) + "\n"
    )
    return report


@pytest.mark.slow
def test_bench_index_full():
    """Full-size benchmark; writes BENCH_index.json at the repo root."""
    report = run_benchmark()
    assert report["all_exact_argmins_identical"]
    # The headline: the largest workload is (c)DTW and the index must
    # beat the dense scan clearly there.
    assert report["largest_config"].startswith("cdtw")
    assert report["largest_config_exact_speedup"] >= 3.0
    assert report["min_approx_recall_clustered"] >= 0.99
    assert report["one_nn"]["exact"]["predictions_identical"]


def test_bench_index_smoke(tmp_path):
    """Scaled-down correctness pass of the benchmark harness itself."""
    report = run_benchmark(SMOKE_CONFIGS, output=tmp_path / "BENCH_index.json")
    assert report["all_exact_argmins_identical"]
    assert report["largest_config"].startswith("cdtw")
    # Exactness holds at any size; speedups are only asserted full-size.
    for row in report["configs"]:
        assert row["exact"]["argmins_identical"]
        assert 0.0 <= row["approx"]["recall"] <= 1.0
    assert report["one_nn"]["exact"]["predictions_identical"]
    assert (tmp_path / "BENCH_index.json").exists()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # CI-sized pass; keep the committed full-size JSON untouched.
        import tempfile

        tmp = Path(tempfile.mkdtemp())
        print(json.dumps(
            run_benchmark(SMOKE_CONFIGS, output=tmp / "BENCH_index.json"),
            indent=2,
        ))
    else:
        print(json.dumps(run_benchmark(), indent=2))
