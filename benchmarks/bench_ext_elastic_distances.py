"""Extension — the wider elastic-measure landscape vs SBD.

The comparisons the paper builds on ([19, 81]) cover the elastic measures
LCSS, EDR, ERP, and MSM alongside ED and DTW. This bench extends Table 2's
1-NN protocol to those measures on a small panel (they are O(m^2) reference
implementations), reporting accuracy and runtime factors vs ED.

Expected shape: the elastic measures cluster around DTW's accuracy (all
beating ED on shift/warp-dominated data) while costing orders of magnitude
more than SBD — reinforcing the paper's point that SBD reaches
elastic-measure accuracy at near-ED cost.
"""

import numpy as np

from conftest import bench_datasets, write_report
from repro.classification import one_nn_accuracy
from repro.harness import format_table, timed

DATASETS = ["SineSquare", "ShortWaves", "Ramps", "ECGFiveDays-syn"]
MEASURES = ["ed", "sbd", "cdtw5", "lcss", "edr", "erp", "msm"]


def test_ext_elastic_distances(benchmark):
    datasets = bench_datasets(DATASETS)
    ds0 = datasets[0]
    benchmark(
        one_nn_accuracy,
        ds0.X_train, ds0.y_train, ds0.X_test, ds0.y_test, metric="erp",
    )

    accs = {m: [] for m in MEASURES}
    times = {m: 0.0 for m in MEASURES}
    for ds in datasets:
        for measure in MEASURES:
            acc, elapsed = timed(
                one_nn_accuracy,
                ds.X_train, ds.y_train, ds.X_test, ds.y_test, metric=measure,
            )
            accs[measure].append(acc)
            times[measure] += elapsed
    rows = [
        [m.upper(), float(np.mean(accs[m])), f"{times[m] / times['ed']:.1f}x"]
        for m in MEASURES
    ]
    report = format_table(
        ["Measure", "Mean 1-NN accuracy", "Runtime vs ED"], rows,
        title=f"Extension: elastic measures vs SBD over {len(DATASETS)} datasets",
    )
    write_report("ext_elastic_distances", report)

    mean = {m: float(np.mean(accs[m])) for m in MEASURES}
    # SBD must beat ED and stay within reach of the best elastic measure.
    assert mean["sbd"] > mean["ed"]
    best_elastic = max(mean[m] for m in ("lcss", "edr", "erp", "msm", "cdtw5"))
    assert mean["sbd"] >= best_elastic - 0.1
    # And SBD is far cheaper than every elastic measure.
    assert all(times[m] > 5 * times["sbd"] for m in ("lcss", "edr", "erp", "msm"))
