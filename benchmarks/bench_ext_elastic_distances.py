"""Extension — the wider elastic-measure landscape vs SBD.

The comparisons the paper builds on ([19, 81]) cover the elastic measures
LCSS, EDR, ERP, and MSM alongside ED and DTW. This bench extends Table 2's
1-NN protocol to those measures on a small panel (they are O(m^2) reference
implementations), reporting accuracy and runtime factors vs ED.

Expected shape: the elastic measures cluster around DTW's accuracy (all
beating ED on shift/warp-dominated data) while costing orders of magnitude
more than SBD — reinforcing the paper's point that SBD reaches
elastic-measure accuracy at near-ED cost.

A second table compares the anti-diagonal *wavefront* kernels (the shipped
implementations) against the retired plain-loop recursions kept as
differential oracles (``_dtw_naive``, ``_lcss_naive``, ...): exact value
equality on every pair, plus the speedup factor. Run it standalone with::

    PYTHONPATH=src python benchmarks/bench_ext_elastic_distances.py --smoke
"""

import sys

import numpy as np

from repro.classification import one_nn_accuracy
from repro.harness import format_table, timed

DATASETS = ["SineSquare", "ShortWaves", "Ramps", "ECGFiveDays-syn"]
MEASURES = ["ed", "sbd", "cdtw5", "lcss", "edr", "erp", "msm"]

# (label, wavefront kernel, naive oracle) — resolved lazily so the module
# imports without the private oracle names at collection time.
WAVEFRONT_SMOKE_PAIRS = 6
WAVEFRONT_SMOKE_M = 64


def _wavefront_cases():
    from repro.distances.dtw import _dtw_naive, cdtw, dtw
    from repro.distances.elastic import (
        _erp_naive,
        _lcss_naive,
        _msm_naive,
        erp,
        lcss,
        msm,
    )

    return [
        ("dtw", dtw, _dtw_naive),
        (
            "cdtw5",
            lambda x, y: cdtw(x, y, window=0.05),
            lambda x, y: _dtw_naive(x, y, window=0.05),
        ),
        ("lcss", lcss, _lcss_naive),
        ("erp", erp, _erp_naive),
        ("msm", msm, _msm_naive),
    ]


def wavefront_vs_naive_rows(n_pairs: int, m: int, seed: int = 0):
    """Per-measure ``[label, naive_s, wavefront_s, speedup]`` rows.

    Asserts exact value equality on every pair first — a speedup over a
    *wrong* kernel would be meaningless.
    """
    rng = np.random.default_rng(seed)
    pairs = [
        (rng.normal(size=m).cumsum(), rng.normal(size=m).cumsum())
        for _ in range(n_pairs)
    ]
    rows = []
    for label, fast, naive in _wavefront_cases():
        for x, y in pairs:
            assert fast(x, y) == naive(x, y), (label, "wavefront != naive")
        _, fast_s = timed(lambda: [fast(x, y) for x, y in pairs])
        _, naive_s = timed(lambda: [naive(x, y) for x, y in pairs])
        rows.append(
            [label, f"{naive_s:.4f}s", f"{fast_s:.4f}s",
             f"{naive_s / max(fast_s, 1e-9):.1f}x"]
        )
    return rows


def test_wavefront_vs_naive():
    """The wavefront kernels match the plain-loop oracles and outrun them."""
    rows = wavefront_vs_naive_rows(
        WAVEFRONT_SMOKE_PAIRS, WAVEFRONT_SMOKE_M, seed=3
    )
    assert len(rows) == len(_wavefront_cases())
    # DTW is the kernel the engine leans on hardest; at m=64 the vectorized
    # wavefront must already clear the interpreted recursion comfortably.
    dtw_speedup = float(rows[0][3].rstrip("x"))
    assert dtw_speedup > 1.0, rows[0]


def test_ext_elastic_distances(benchmark):
    from conftest import bench_datasets, write_report

    datasets = bench_datasets(DATASETS)
    ds0 = datasets[0]
    benchmark(
        one_nn_accuracy,
        ds0.X_train, ds0.y_train, ds0.X_test, ds0.y_test, metric="erp",
    )

    accs = {m: [] for m in MEASURES}
    times = {m: 0.0 for m in MEASURES}
    for ds in datasets:
        for measure in MEASURES:
            acc, elapsed = timed(
                one_nn_accuracy,
                ds.X_train, ds.y_train, ds.X_test, ds.y_test, metric=measure,
            )
            accs[measure].append(acc)
            times[measure] += elapsed
    rows = [
        [m.upper(), float(np.mean(accs[m])), f"{times[m] / times['ed']:.1f}x"]
        for m in MEASURES
    ]
    report = format_table(
        ["Measure", "Mean 1-NN accuracy", "Runtime vs ED"], rows,
        title=f"Extension: elastic measures vs SBD over {len(DATASETS)} datasets",
    )
    write_report("ext_elastic_distances", report)

    mean = {m: float(np.mean(accs[m])) for m in MEASURES}
    # SBD must beat ED and stay within reach of the best elastic measure.
    assert mean["sbd"] > mean["ed"]
    best_elastic = max(mean[m] for m in ("lcss", "edr", "erp", "msm", "cdtw5"))
    assert mean["sbd"] >= best_elastic - 0.1
    # And SBD is far cheaper than every elastic measure.
    assert all(times[m] > 5 * times["sbd"] for m in ("lcss", "edr", "erp", "msm"))


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        n_pairs, m = WAVEFRONT_SMOKE_PAIRS, WAVEFRONT_SMOKE_M
    else:
        n_pairs, m = 20, 256
    table = format_table(
        ["Measure", "Naive", "Wavefront", "Speedup"],
        wavefront_vs_naive_rows(n_pairs, m),
        title=(
            "Wavefront kernels vs naive recursions "
            f"({n_pairs} pairs, m={m}; exact equality asserted)"
        ),
    )
    print(table)