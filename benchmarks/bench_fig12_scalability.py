"""Appendix B (Figure 12) — scalability of k-Shape vs k-AVG+ED on CBF.

Regenerates the scalability study: runtime of k-Shape and k-AVG+ED as a
function of the number of sequences n (at m=128) and of the sequence
length m (at fixed n), on the synthetic CBF dataset.

Expected shape: both methods scale linearly in n; k-Shape's dependence on
m is superlinear (the m^2/m^3 terms of the refinement step) and overtakes
k-AVG+ED as m grows, matching Figure 12b.
"""

import os

import numpy as np

from conftest import write_report
from repro import KShape, k_avg_ed
from repro.datasets import make_cbf
from repro.harness import format_table, timed
from repro.preprocessing import zscore

BENCH_FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

N_SWEEP = (150, 300, 600, 1200) if not BENCH_FULL else (900, 1800, 3600, 9000)
M_SWEEP = (64, 128, 256, 512) if not BENCH_FULL else (100, 500, 1000, 2000)
FIXED_M = 128
FIXED_N_PER_CLASS = 100 if not BENCH_FULL else 600
MAX_ITER = 10


def _fit_time(model_factory, X):
    model = model_factory()
    _, elapsed = timed(model.fit, X)
    return elapsed


def test_fig12_scalability(benchmark):
    import warnings

    from repro.exceptions import ConvergenceWarning

    rows_n = []
    kshape_n_times = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for n_total in N_SWEEP:
            X, _ = make_cbf(n_total // 3, FIXED_M, rng=0)
            X = zscore(X)
            t_ks = _fit_time(
                lambda: KShape(3, random_state=0, max_iter=MAX_ITER), X
            )
            t_km = _fit_time(
                lambda: k_avg_ed(3, random_state=0, max_iter=MAX_ITER), X
            )
            kshape_n_times.append(t_ks)
            rows_n.append([X.shape[0], t_km, t_ks])

        rows_m = []
        for m in M_SWEEP:
            X, _ = make_cbf(FIXED_N_PER_CLASS, m, rng=0)
            X = zscore(X)
            t_ks = _fit_time(
                lambda: KShape(3, random_state=0, max_iter=MAX_ITER), X
            )
            t_km = _fit_time(
                lambda: k_avg_ed(3, random_state=0, max_iter=MAX_ITER), X
            )
            rows_m.append([m, t_km, t_ks])

        # The pytest-benchmark kernel: one k-Shape fit at the base size.
        X, _ = make_cbf(N_SWEEP[0] // 3, FIXED_M, rng=0)
        X = zscore(X)
        benchmark.pedantic(
            lambda: KShape(3, random_state=0, max_iter=MAX_ITER).fit(X),
            rounds=3, iterations=1,
        )

    report = format_table(
        ["n (m=128)", "k-AVG+ED sec", "k-Shape sec"], rows_n,
        title="Figure 12a: runtime vs number of sequences (CBF)",
        float_fmt="{:.3f}",
    )
    report += "\n\n" + format_table(
        [f"m (n={FIXED_N_PER_CLASS * 3})", "k-AVG+ED sec", "k-Shape sec"],
        rows_m,
        title="Figure 12b: runtime vs sequence length (CBF)",
        float_fmt="{:.3f}",
    )
    write_report("fig12_scalability", report)

    # Reproduction shape: near-linear growth in n — an 8x larger dataset
    # must not cost more than ~24x (3x headroom over linear for noise).
    ratio = kshape_n_times[-1] / max(kshape_n_times[0], 1e-6)
    scale = N_SWEEP[-1] / N_SWEEP[0]
    assert ratio <= 3.0 * scale
