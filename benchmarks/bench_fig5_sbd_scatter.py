"""Figure 5 — per-dataset 1-NN accuracy scatter: SBD vs ED and SBD vs DTW.

Regenerates the paper's Figure 5 as ASCII scatter plots: circles above the
diagonal are datasets where SBD is more accurate than the measure on the
x-axis. Expected shape: almost everything above the diagonal against ED;
a roughly balanced cloud against DTW.
"""

from conftest import write_report
from repro.harness import format_scatter


def test_fig5_scatter(benchmark, distance_eval):
    names, accuracies, _, _ = distance_eval

    from repro.core import sbd
    from repro.datasets import load_dataset

    ds = load_dataset(names[0])
    benchmark(sbd, ds.X[0], ds.X[1])

    report = format_scatter(
        accuracies["ED"], accuracies["SBD"], "ED accuracy", "SBD accuracy",
        title="Figure 5a: SBD vs ED (one point per dataset)",
    )
    report += "\n\n" + format_scatter(
        accuracies["DTW"], accuracies["SBD"], "DTW accuracy", "SBD accuracy",
        title="Figure 5b: SBD vs DTW (one point per dataset)",
    )
    per_dataset = "\n".join(
        f"  {n:20s} ED={accuracies['ED'][i]:.3f} DTW={accuracies['DTW'][i]:.3f} "
        f"SBD={accuracies['SBD'][i]:.3f}"
        for i, n in enumerate(names)
    )
    report += "\n\nPer-dataset accuracies:\n" + per_dataset
    write_report("fig5_sbd_scatter", report)

    wins_vs_ed = sum(s >= e for s, e in zip(accuracies["SBD"], accuracies["ED"]))
    assert wins_vs_ed >= len(names) * 0.6
