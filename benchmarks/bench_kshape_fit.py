"""Micro-benchmark: seed vs fast-path ``KShape.fit`` wall-clock per phase.

PR 3 reworked the k-Shape hot loop: Gram-trick shape extraction (no ``Q``
or ``M`` materialization), one vectorized batched alignment gather,
dirty-cluster caching, and batched centroid rFFTs. This bench times the
**seed path** — a faithful replica of the pre-change ``_single_run``
(literal Equation 15 extraction with two dense ``m×m`` products, per-row
``shift_series`` alignment, one ``np.fft.rfft`` per centroid per
iteration, no caching) — against the shipped ``KShape.fit``, phase by
phase (align / extract / assign), and records the result in
``BENCH_kshape.json`` at the repo root.

Both paths consume the identical RNG stream, so the comparison also locks
in correctness: labels must be *identical* and inertia must agree to
float round-off.

Run standalone (full size, the ISSUE's n=500, m=1024, k=8 workload)::

    PYTHONPATH=src python benchmarks/bench_kshape_fit.py

scaled down (CI)::

    PYTHONPATH=src python benchmarks/bench_kshape_fit.py --smoke

or through pytest (the full-size run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kshape_fit.py -m slow
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest
from scipy.linalg import eigh

from repro.clustering.base import random_assignment, repair_empty_clusters
from repro.core._fft_batch import fft_len_for, ncc_c_max_batch, rfft_batch
from repro.core.kshape import KShape
from repro.core.shape_extraction import _alignment_shifts
from repro.exceptions import ConvergenceWarning
from repro.preprocessing import shift_series, zscore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kshape.json"

BENCH_N = int(os.environ.get("REPRO_BENCH_KSHAPE_N", "500"))
BENCH_M = int(os.environ.get("REPRO_BENCH_KSHAPE_M", "1024"))
BENCH_K = int(os.environ.get("REPRO_BENCH_KSHAPE_K", "8"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_KSHAPE_SEED", "7"))


def make_workload(n: int, m: int, k: int, seed: int = 0) -> np.ndarray:
    """``k`` families of randomly phased sinusoids (shift-invariant classes)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, m)
    rows = []
    for i in range(n):
        freq = 2.0 + 1.5 * (i % k)
        phase = rng.uniform(0.0, 1.0)
        rows.append(
            np.sin(2 * np.pi * (freq * t + phase)) + rng.normal(0, 0.1, m)
        )
    return zscore(np.asarray(rows))


def _naive_eig_centroid(data: np.ndarray) -> np.ndarray:
    """Seed extraction core: literal Eq. 15 with Q and M materialized."""
    if data.shape[0] == 1:
        return zscore(data[0])
    data = zscore(data)
    m = data.shape[1]
    s_matrix = data.T @ data
    q_matrix = np.eye(m) - np.ones((m, m)) / m
    m_matrix = q_matrix.T @ s_matrix @ q_matrix
    _, vecs = eigh(m_matrix, subset_by_index=[m - 1, m - 1])
    centroid = vecs[:, 0]
    if np.dot(centroid, data.mean(axis=0)) < 0:
        centroid = -centroid
    return zscore(centroid)


def seed_fit(X: np.ndarray, k: int, seed: int, max_iter: int = 100) -> dict:
    """Replica of the pre-change ``KShape._single_run`` with phase timers."""
    n, m = X.shape
    rng = np.random.default_rng(seed)
    fft_len = fft_len_for(m)
    fft_X = rfft_batch(X, fft_len)
    norms_X = np.linalg.norm(X, axis=1)
    labels = random_assignment(n, k, rng)
    centroids = np.zeros((k, m))
    dists = np.zeros((n, k))
    timings = {"align": 0.0, "extract": 0.0, "assign": 0.0}
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        previous = labels
        for j in range(k):
            members = X[labels == j]
            if members.shape[0] == 0:
                continue
            tick = time.perf_counter()
            if np.any(centroids[j]):
                shifts = _alignment_shifts(members, centroids[j])
                aligned = np.empty_like(members)
                for i in range(members.shape[0]):  # the seed per-row loop
                    aligned[i] = shift_series(members[i], int(shifts[i]))
            else:
                aligned = members.copy()
            timings["align"] += time.perf_counter() - tick
            tick = time.perf_counter()
            centroids[j] = _naive_eig_centroid(aligned)
            timings["extract"] += time.perf_counter() - tick
        tick = time.perf_counter()
        for j in range(k):  # one rfft per centroid per iteration
            fft_c = np.fft.rfft(centroids[j], fft_len)
            norm_c = float(np.linalg.norm(centroids[j]))
            values, _ = ncc_c_max_batch(
                fft_X, norms_X, fft_c, norm_c, m, fft_len
            )
            dists[:, j] = 1.0 - values
        labels = np.argmin(dists, axis=1)
        labels = repair_empty_clusters(labels, k, rng)
        timings["assign"] += time.perf_counter() - tick
        if np.array_equal(labels, previous):
            converged = True
            break
    inertia = float(np.sum(dists[np.arange(n), labels] ** 2))
    return {
        "labels": labels,
        "inertia": inertia,
        "n_iter": n_iter,
        "converged": converged,
        "timings": timings,
    }


def run_benchmark(
    n: int = BENCH_N,
    m: int = BENCH_M,
    k: int = BENCH_K,
    seed: int = BENCH_SEED,
    output: Path | None = None,
) -> dict:
    X = make_workload(n, m, k, seed=0)

    start = time.perf_counter()
    reference = seed_fit(X, k, seed)
    seed_total = time.perf_counter() - start

    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        model = KShape(k, random_state=seed).fit(X)
    fast_total = time.perf_counter() - start
    fast_timings = model.result_.extra["phase_seconds"]

    labels_identical = bool(np.array_equal(reference["labels"], model.labels_))
    inertia_match = bool(
        np.isclose(reference["inertia"], model.inertia_, rtol=1e-9, atol=1e-12)
    )
    report = {
        "benchmark": "KShape.fit seed path vs fast path",
        "n": n,
        "m": m,
        "k": k,
        "random_state": seed,
        "seed_path": {
            "total_s": round(seed_total, 4),
            "align_s": round(reference["timings"]["align"], 4),
            "extract_s": round(reference["timings"]["extract"], 4),
            "assign_s": round(reference["timings"]["assign"], 4),
            "n_iter": reference["n_iter"],
        },
        "fast_path": {
            "total_s": round(fast_total, 4),
            "align_s": round(fast_timings["align"], 4),
            "extract_s": round(fast_timings["extract"], 4),
            "assign_s": round(fast_timings["assign"], 4),
            "n_iter": model.n_iter_,
        },
        "speedup": round(seed_total / max(fast_total, 1e-9), 3),
        "labels_identical": labels_identical,
        "inertia_match": inertia_match,
    }
    assert labels_identical, "fast path diverged from the seed labels"
    assert inertia_match, "fast path inertia diverged from the seed path"
    (OUTPUT if output is None else output).write_text(
        json.dumps(report, indent=2) + "\n"
    )
    return report


@pytest.mark.slow
def test_bench_kshape_fit_full():
    """Full-size (n=500, m=1024, k=8) benchmark; writes BENCH_kshape.json."""
    report = run_benchmark()
    assert report["labels_identical"] and report["inertia_match"]
    assert report["speedup"] >= 3.0


def test_bench_kshape_fit_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_kshape.json"
    )
    report = run_benchmark(n=40, m=64, k=3, seed=5)
    assert report["labels_identical"] and report["inertia_match"]
    assert (tmp_path / "BENCH_kshape.json").exists()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # CI-sized pass; keep the committed full-size JSON untouched.
        import tempfile

        smoke_out = Path(tempfile.gettempdir()) / "BENCH_kshape_smoke.json"
        print(json.dumps(
            run_benchmark(n=40, m=64, k=3, seed=5, output=smoke_out), indent=2
        ))
    else:
        print(json.dumps(run_benchmark(), indent=2))
