"""Figure 9 — ranks of the methods that challenge k-AVG+ED.

Regenerates the paper's Figure 9: average ranks of k-Shape, PAM+SBD,
PAM+cDTW, S+SBD, and k-AVG+ED with the Nemenyi critical difference.
Expected shape: the four challengers form one statistical group; k-AVG+ED
is ranked last.
"""

import numpy as np

from conftest import write_report
from repro.harness import format_rank_line
from repro.stats import friedman_test, nemenyi_groups, nemenyi_test


def test_fig9_ranking(benchmark, nonscalable_eval, kmeans_variants_eval):
    ds_names, ns_scores = nonscalable_eval
    _, km_scores, _ = kmeans_variants_eval

    methods = ["k-Shape", "PAM+SBD", "PAM+cDTW", "S+SBD", "k-AVG+ED"]
    columns = {
        "k-Shape": km_scores["k-Shape"],
        "k-AVG+ED": km_scores["k-AVG+ED"],
        "PAM+SBD": ns_scores["PAM+SBD"],
        "PAM+cDTW": ns_scores["PAM+cDTW"],
        "S+SBD": ns_scores["S+SBD"],
    }
    matrix = np.column_stack([columns[m] for m in methods])

    result = benchmark(friedman_test, matrix)
    nem = nemenyi_test(matrix)
    groups = nemenyi_groups(matrix, methods)

    report = format_rank_line(
        methods, nem.average_ranks, nem.critical_difference,
        title=f"Figure 9: top-method ranks over {len(ds_names)} datasets",
    )
    report += f"\n  Friedman chi2={result.statistic:.3f} p={result.p_value:.4f}"
    report += "\n  Nemenyi groups (wiggly line): " + "; ".join(
        "{" + ", ".join(g) + "}" for g in groups
    )
    write_report("fig9_method_ranking", report)

    ranks = dict(zip(methods, nem.average_ranks))
    assert ranks["k-Shape"] <= ranks["k-AVG+ED"]
