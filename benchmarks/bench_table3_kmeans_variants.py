"""Table 3 — k-means variants vs k-AVG+ED (Rand Index + runtime factors).

Regenerates the paper's Table 3: k-AVG+SBD, k-AVG+DTW, KSC, k-DBA,
k-Shape+DTW, and k-Shape, each compared against the classic k-means
baseline with the Wilcoxon test, Rand Index averaged over repeated random
initializations, and runtime factors.

Expected shape: only k-Shape beats k-AVG+ED with statistical significance;
k-AVG+DTW underperforms; k-Shape stays within a modest factor of
k-AVG+ED's runtime while the DTW-based variants are orders slower.
"""

import numpy as np

from conftest import write_report
from repro.harness import format_comparison_table
from repro.stats import compare_to_baseline


def test_table3_kmeans_variants(benchmark, kmeans_variants_eval):
    names, scores, runtimes = kmeans_variants_eval

    from repro import KShape
    from repro.datasets import load_dataset

    ds = load_dataset(names[0])
    benchmark.pedantic(
        lambda: KShape(ds.n_classes, random_state=0).fit(ds.X),
        rounds=3, iterations=1,
    )

    order = ["k-AVG+SBD", "k-AVG+DTW", "KSC", "k-DBA", "k-Shape+DTW", "k-Shape"]
    table_scores = {"k-AVG+ED": scores["k-AVG+ED"]}
    table_scores.update({m: scores[m] for m in order})
    rows = compare_to_baseline(table_scores, "k-AVG+ED", alpha=0.01)

    base_total = runtimes["k-AVG+ED"].sum()
    factors = {m: runtimes[m].sum() / base_total for m in runtimes}
    report = format_comparison_table(
        rows, "k-AVG+ED", score_name="Rand Index",
        runtime_factors=factors,
        title=f"Table 3: k-means variants vs k-AVG+ED over {len(names)} datasets",
    )
    write_report("table3_kmeans_variants", report)

    by_name = {r.name: r for r in rows}
    # Reproduction shape: k-Shape clearly beats the k-AVG+ED baseline and
    # sits at (or statistically tied with) the top of the variant table —
    # on the scaled-down panel we allow a small tie margin, mirroring the
    # paper's finding that no variant significantly beats k-Shape.
    assert by_name["k-Shape"].mean_score > float(np.mean(scores["k-AVG+ED"]))
    best = max(r.mean_score for r in rows)
    assert by_name["k-Shape"].mean_score >= best - 0.03
    # And DTW-flavored k-means costs orders of magnitude more than k-Shape.
    assert factors["k-DBA"] > factors["k-Shape"]
