"""Table 2 — 1-NN comparison of distance measures against ED.

Regenerates the paper's Table 2: per-measure win/tie/loss counts against
the ED baseline, Wilcoxon significance, average 1-NN accuracy, and runtime
factors relative to ED (including the LB_Keogh-accelerated cDTW rows and
the SBD implementation ablations SBDNoFFT / SBDNoPow2).

Expected shape (paper): every measure beats ED on accuracy; cDTWopt/cDTW5
and SBD land within a whisker of each other; SBD runs orders of magnitude
faster than the DTW family and within a small factor of ED.
"""

import numpy as np

from conftest import write_report
from repro.harness import format_comparison_table, format_table
from repro.stats import compare_to_baseline


def test_table2_accuracy_and_runtime(benchmark, distance_eval, lb_eval):
    names, accuracies, runtimes, tuned_windows = distance_eval

    # The timed kernel: one full SBD-based 1-NN evaluation on the first
    # dataset (the paper's runtime unit is the 1-NN classification loop).
    from repro.classification import one_nn_accuracy
    from repro.datasets import load_dataset

    ds = load_dataset(names[0])
    benchmark(
        one_nn_accuracy,
        ds.X_train, ds.y_train, ds.X_test, ds.y_test, metric="sbd",
    )

    order = ["DTW", "cDTWopt", "cDTW5", "cDTW10", "SBDNoFFT", "SBDNoPow2", "SBD"]
    scores = {"ED": accuracies["ED"]}
    scores.update({m: accuracies[m] for m in order})
    rows = compare_to_baseline(scores, "ED", alpha=0.01)

    ed_total = runtimes["ED"].sum()
    factors = {m: runtimes[m].sum() / ed_total for m in accuracies}
    factors.update({m: lb_eval[m].sum() / ed_total for m in lb_eval})

    report = format_comparison_table(
        rows, "ED", score_name="1-NN acc",
        runtime_factors=factors,
        title=f"Table 2: distance measures vs ED over {len(names)} datasets",
    )
    lb_rows = [[m, f"{factors[m]:.1f}x"] for m in
               ("DTW_LB", "cDTW5_LB", "cDTW10_LB")]
    report += "\n\n" + format_table(
        ["LB-accelerated", "Runtime vs ED"], lb_rows,
        title="LB_Keogh-pruned runtimes",
    )
    report += "\n\ncDTWopt tuned windows: " + ", ".join(
        f"{k}={v:.2f}" for k, v in tuned_windows.items()
    )
    write_report("table2_distances", report)

    # Reproduction checks on the *shape* of the result: SBD must beat ED
    # significantly and be far cheaper than the DTW family.
    by_name = {r.name: r for r in rows}
    assert by_name["SBD"].mean_score > np.mean(accuracies["ED"])
    assert factors["SBD"] < factors["DTW"] / 10.0
    assert factors["SBD"] < factors["SBDNoFFT"]
