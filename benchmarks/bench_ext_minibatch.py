"""Extension — mini-batch k-Shape vs full k-Shape at growing n.

Extends the Appendix B scalability story: the mini-batch variant caps the
per-update cost by its batch and reservoir sizes, so its total fit time
grows sublinearly in n (it simply samples a fixed budget of batches) while
full k-Shape's per-iteration cost grows linearly. Quality is measured on
the full dataset after fitting.
"""

import numpy as np

from conftest import write_report
from repro import KShape, MiniBatchKShape, rand_index
from repro.datasets import make_cbf
from repro.harness import format_table, timed
from repro.preprocessing import zscore

N_SWEEP = (300, 900, 1800)


def test_ext_minibatch(benchmark):
    import warnings

    from repro.exceptions import ConvergenceWarning

    rows = []
    quality = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for n_total in N_SWEEP:
            X, y = make_cbf(n_total // 3, 128, rng=0)
            X = zscore(X)
            full = KShape(3, random_state=0, max_iter=15)
            _, t_full = timed(full.fit, X)
            ri_full = rand_index(y, full.labels_)
            mini = MiniBatchKShape(3, batch_size=128, n_batches=12,
                                   reservoir_size=128, random_state=0)
            _, t_mini = timed(mini.fit, X)
            ri_mini = rand_index(y, mini.predict(X))
            quality[n_total] = (ri_full, ri_mini)
            rows.append([X.shape[0], t_full, ri_full, t_mini, ri_mini])

        X, _ = make_cbf(N_SWEEP[0] // 3, 128, rng=0)
        X = zscore(X)
        benchmark.pedantic(
            lambda: MiniBatchKShape(3, batch_size=128, n_batches=12,
                                    random_state=0).fit(X),
            rounds=3, iterations=1,
        )

    report = format_table(
        ["n", "full sec", "full RI", "mini sec", "mini RI"], rows,
        title="Extension: mini-batch vs full k-Shape on CBF (m=128)",
        float_fmt="{:.3f}",
    )
    write_report("ext_minibatch", report)

    # Mini-batch must stay within 0.15 Rand Index of full k-Shape everywhere.
    for n_total, (ri_full, ri_mini) in quality.items():
        assert ri_mini >= ri_full - 0.15, n_total
