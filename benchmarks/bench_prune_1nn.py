"""Micro-benchmark: brute-force vs pruned (c)DTW 1-NN wall-clock.

PR 4 added the pruned nearest-neighbor engine
(:class:`repro.distances.NeighborEngine`): batch-precomputed Keogh
envelopes, vectorized LB_Kim/LB_Yi screening, ascending-bound candidate
ordering, and ``cutoff=``-early-abandoning DTW confirmation. This bench
classifies a CBF workload with both the dense ``cross_distances`` path and
the engine, checks the predictions are **bit-identical**, and records the
speedup plus the engine's per-tier pruning rates in ``BENCH_prune.json``
at the repo root.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_prune_1nn.py

scaled down (CI)::

    PYTHONPATH=src python benchmarks/bench_prune_1nn.py --smoke

or through pytest (the full-size run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_prune_1nn.py -m slow
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.classification import one_nn_classify
from repro.datasets import make_cbf
from repro.distances import PruningStats
from repro.preprocessing import zscore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_prune.json"

BENCH_N_TRAIN = int(os.environ.get("REPRO_BENCH_PRUNE_NTRAIN", "100"))
BENCH_N_TEST = int(os.environ.get("REPRO_BENCH_PRUNE_NTEST", "40"))
BENCH_M = int(os.environ.get("REPRO_BENCH_PRUNE_M", "160"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_PRUNE_SEED", "11"))

# The Table 2 rows the engine accelerates: (metric, engine window).
ROWS = (
    ("cdtw5", 0.05),
    ("cdtw10", 0.10),
)


def make_workload(n_train: int, n_test: int, m: int, seed: int):
    """A z-normalized CBF (cylinder-bell-funnel) train/test split."""
    rng = np.random.default_rng(seed)
    X, y = make_cbf(n_train + n_test, m, rng)
    X = zscore(X)
    return X[:n_train], y[:n_train], X[n_train:], y[n_train:]


def _previous_pruned_times(path: Path) -> dict:
    """Per-metric ``pruned_s`` from the committed report, if one exists.

    Recording the previous run's wall-clock in the regenerated JSON keeps
    the perf trajectory in the file itself (the wavefront-batching PR is
    measured against the scalar-confirm engine it replaced).
    """
    try:
        previous = json.loads(path.read_text())
        return {
            metric: float(row["pruned_s"])
            for metric, row in previous.get("rows", {}).items()
        }
    except (OSError, ValueError, KeyError, TypeError):
        return {}


def run_benchmark(
    n_train: int = BENCH_N_TRAIN,
    n_test: int = BENCH_N_TEST,
    m: int = BENCH_M,
    seed: int = BENCH_SEED,
    output: Path | None = None,
) -> dict:
    X_tr, y_tr, X_te, _ = make_workload(n_train, n_test, m, seed)
    target = OUTPUT if output is None else output
    previous = _previous_pruned_times(target)

    rows = {}
    for metric, window in ROWS:
        start = time.perf_counter()
        brute = one_nn_classify(X_tr, y_tr, X_te, metric=metric)
        brute_s = time.perf_counter() - start

        stats = PruningStats()
        start = time.perf_counter()
        pruned = one_nn_classify(
            X_tr, y_tr, X_te, metric=metric, lb_window=window, stats=stats
        )
        pruned_s = time.perf_counter() - start

        identical = bool(np.array_equal(brute, pruned))
        assert identical, f"pruned 1-NN diverged from brute force ({metric})"
        rows[metric] = {
            "brute_s": round(brute_s, 4),
            "pruned_s": round(pruned_s, 4),
            "speedup": round(brute_s / max(pruned_s, 1e-9), 3),
            "predictions_identical": identical,
            "pruning": {
                k: (round(v, 4) if isinstance(v, float) else v)
                for k, v in stats.as_dict().items()
            },
        }
        if metric in previous:
            rows[metric]["previous_pruned_s"] = round(previous[metric], 4)
            rows[metric]["speedup_vs_previous"] = round(
                previous[metric] / max(pruned_s, 1e-9), 3
            )

    report = {
        "benchmark": "brute vs pruned (c)DTW 1-NN",
        "n_train": n_train,
        "n_test": n_test,
        "m": m,
        "seed": seed,
        "rows": rows,
    }
    target.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.slow
def test_bench_prune_1nn_full():
    """Full-size benchmark; writes BENCH_prune.json at the repo root."""
    report = run_benchmark()
    for metric, row in report["rows"].items():
        assert row["predictions_identical"], metric
        assert row["pruning"]["prune_rate"] > 0.5, metric
    # Both sides of the ratio now run on the batched wavefront kernels —
    # brute confirmation collapsed from minutes to well under a second —
    # so the engine's margin over brute force is thinner than in the
    # scalar-kernel era. The cascade must still pay for itself.
    assert report["rows"]["cdtw5"]["speedup"] >= 1.0


def test_bench_prune_1nn_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_prune.json"
    )
    report = run_benchmark(n_train=25, n_test=10, m=64, seed=5)
    for row in report["rows"].values():
        assert row["predictions_identical"]
        pruning = row["pruning"]
        assert pruning["candidates"] == (
            pruning["lb_kim"] + pruning["lb_yi"] + pruning["lb_keogh"]
            + pruning["abandoned"] + pruning["full"]
            + pruning["cached"] + pruning["skipped"]
        )
    assert (tmp_path / "BENCH_prune.json").exists()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # CI-sized pass; keep the committed full-size JSON untouched.
        import tempfile

        smoke_out = Path(tempfile.gettempdir()) / "BENCH_prune_smoke.json"
        print(json.dumps(
            run_benchmark(n_train=25, n_test=10, m=64, seed=5,
                          output=smoke_out),
            indent=2,
        ))
    else:
        print(json.dumps(run_benchmark(), indent=2))
