"""Production-traffic simulator: does the hardware autotuner earn its keep?

Every scenario runs twice over the same drifting CBF stream — once
**uncalibrated** (``use_profile(None)``: the static ``DEFAULT_MAX_BATCH``
/ ``DEFAULT_MAX_LATENCY_S`` constants and the static cost model) and once
**calibrated** (``use_profile(calibrate(quick=True))``: the measured
:class:`~repro.tuning.HardwareProfile` of this machine) — and records
p50/p99 request latency (from the ``ServingStats`` reservoir), mean batch
occupancy, kernel-time throughput, and the deadline-miss ("drop") rate
into ``BENCH_load.json``.

Scenarios
---------

``poisson_steady``
    Poisson arrivals slower than the service rate: most batches flush on
    the *latency deadline*, so per-request latency ≈ ``max_latency_s``.
    The static default waits 10 ms; the calibrated deadline is a few
    measured batch services (clamped to never exceed the static 10 ms),
    so calibration directly cuts tail latency.
``burst``
    Bursts of mixed sizes (via :func:`repro.datasets.replay_stream`) with
    idle gaps. Each burst's final partial batch waits out the deadline —
    again the calibrated policy pays less.
``saturation``
    Back-pressure mode: enqueue everything, then drain through a passive
    queue. Batches hit ``max_batch`` exactly, so throughput is the
    batched-kernel rate at that occupancy; the calibrated ``max_batch``
    is never below the static default, so amortization only improves.
``offline_matrix_dtw``
    The offline side: which backend does ``resolve_backend`` pick for a
    DTW matrix under each mode? When both modes resolve to the same
    configuration, the work is measured once and reported for both —
    timing identical code twice measures noise, not scheduling.

Fairness guard: if the calibrated serving policy happens to equal the
static one, the queue scenarios are measured once and reported for both
modes (``identical_policy: true``) for the same reason.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_load.py

CI-sized harness check (temp output, seconds)::

    PYTHONPATH=src python benchmarks/bench_load.py --smoke
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.datasets import make_cbf, replay_stream
from repro.distances import pairwise_distances
from repro.parallel import effective_n_jobs, resolve_backend
from repro.preprocessing import zscore
from repro.serving import MicroBatchQueue, ShapePredictor
from repro.serving.queue import DEFAULT_MAX_BATCH, DEFAULT_MAX_LATENCY_S
from repro.tuning import HardwareProfile, calibrate, use_profile

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_load.json"

#: A request is "dropped" (abandoned by its client) when its latency
#: exceeds this deadline — between the calibrated and the static flush
#: deadlines, so the policy difference is visible in the drop rate.
DROP_DEADLINE_S = 0.008

SERIES_LENGTH = 128
N_CENTROIDS = 4


def _drifting_pool(n: int, m: int, seed: int) -> np.ndarray:
    """A CBF sample whose baseline drifts over the request sequence."""
    rng = np.random.default_rng(seed)
    X, _ = make_cbf(max(n // 3, 1), m, rng)
    while X.shape[0] < n:
        extra, _ = make_cbf(1, m, np.random.default_rng(seed + X.shape[0]))
        X = np.vstack([X, extra])
    X = X[:n]
    drift = np.linspace(0.0, 1.5, n)[:, None] * np.sin(
        np.linspace(0.0, np.pi, m)
    )[None, :]
    return zscore(X + drift)


def _predictor(seed: int) -> ShapePredictor:
    rng = np.random.default_rng(seed)
    centroids = zscore(rng.standard_normal((N_CENTROIDS, SERIES_LENGTH)))
    return ShapePredictor(centroids, metric="sbd")


def _summarize(queue: MicroBatchQueue) -> Dict[str, float]:
    stats = queue.stats()
    latencies = np.fromiter(stats.recent_latencies, dtype=np.float64)
    dropped = float(np.mean(latencies > DROP_DEADLINE_S)) if latencies.size else 0.0
    return {
        "requests": stats.requests,
        "completed": stats.completed,
        "batches": stats.batches,
        "mean_batch_size": round(stats.mean_batch_size, 3),
        "p50_latency_s": round(stats.p50_latency_s, 6),
        "p99_latency_s": round(stats.p99_latency_s, 6),
        "max_latency_s": round(stats.max_latency_s, 6),
        "throughput_per_s": round(stats.throughput, 1),
        "drop_rate": round(dropped, 4),
        "max_batch_policy": queue.max_batch,
        "max_latency_policy_s": queue.max_latency_s,
    }


def scenario_poisson_steady(
    pool: np.ndarray, n_requests: int, rate_hz: float, seed: int
) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_hz, size=n_requests)
    with MicroBatchQueue(_predictor(seed)) as queue:
        futures = []
        for i in range(n_requests):
            time.sleep(gaps[i])
            futures.append(queue.submit(pool[i % pool.shape[0]]))
        for future in futures:
            future.result()
        return _summarize(queue)


def scenario_burst(
    pool: np.ndarray, n_bursts: int, gap_s: float, seed: int
) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    # Mixed batch sizes: replay the drifting pool in bursts of varying
    # width, idle gap between bursts.
    sizes = [1, 4, 8, 16, 48]
    stream = replay_stream(
        pool, batch_size=max(sizes), shuffle=True, epochs=max(n_bursts, 1), rng=rng
    )
    with MicroBatchQueue(_predictor(seed)) as queue:
        for burst_index in range(n_bursts):
            X_batch, _ = next(stream)
            width = min(sizes[burst_index % len(sizes)], X_batch.shape[0])
            futures = [queue.submit(x) for x in X_batch[:width]]
            for future in futures:
                future.result()
            time.sleep(gap_s)
        return _summarize(queue)


def scenario_saturation(
    pool: np.ndarray, n_requests: int, reps: int, seed: int
) -> Dict[str, float]:
    predictor = _predictor(seed)
    # Warm numpy/FFT code paths so neither mode pays first-call costs.
    predictor.predict_full(pool[: min(64, pool.shape[0])])
    best: Optional[Dict[str, float]] = None
    for _ in range(max(reps, 1)):
        queue = MicroBatchQueue(predictor, autostart=False)
        for i in range(n_requests):
            queue.submit(pool[i % pool.shape[0]])
        queue.flush()
        summary = _summarize(queue)
        queue.close()
        if best is None or summary["throughput_per_s"] > best["throughput_per_s"]:
            best = summary
    assert best is not None
    return best


def scenario_offline_matrix(
    n: int, m: int, n_jobs: int, profile: Optional[HardwareProfile]
) -> Dict[str, object]:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # n_jobs clamp
        backend, jobs = resolve_backend(
            n, n, m, "dtw", n_jobs, None, True, profile=profile
        )
    X = _drifting_pool(n, m, seed=7)
    start = time.perf_counter()
    if backend == "serial":
        pairwise_distances(X, "dtw")
    else:
        pairwise_distances(X, "dtw", n_jobs=n_jobs)
    elapsed = time.perf_counter() - start
    return {
        "backend_resolved": backend,
        "n_jobs_resolved": jobs,
        "wall_s": round(elapsed, 4),
    }


#: (row label, scenario key, stat key, True when larger is better)
COMPARISON_ROWS = [
    ("poisson_steady.p50_latency_s", "poisson_steady", "p50_latency_s", False),
    ("poisson_steady.p99_latency_s", "poisson_steady", "p99_latency_s", False),
    ("poisson_steady.drop_rate", "poisson_steady", "drop_rate", False),
    ("burst.p99_latency_s", "burst", "p99_latency_s", False),
    ("burst.drop_rate", "burst", "drop_rate", False),
    ("saturation.throughput_per_s", "saturation", "throughput_per_s", True),
    ("offline_matrix_dtw.wall_s", "offline_matrix_dtw", "wall_s", False),
]


def run_benchmark(smoke: bool = False) -> dict:
    if smoke:
        n_pool, n_requests, rate_hz, n_bursts, reps = 64, 60, 1500.0, 6, 2
        saturation_requests, matrix_n = 800, 24
    else:
        n_pool, n_requests, rate_hz, n_bursts, reps = 256, 400, 900.0, 24, 3
        saturation_requests, matrix_n = 4000, 120
    pool = _drifting_pool(n_pool, SERIES_LENGTH, seed=11)

    profile = calibrate(quick=True)
    identical_policy = (
        profile.serving_max_batch == DEFAULT_MAX_BATCH
        and abs(profile.serving_max_latency_s - DEFAULT_MAX_LATENCY_S) < 1e-12
    )

    scenarios: Dict[str, Dict[str, Dict]] = {}

    def run_queue_scenarios() -> Dict[str, Dict[str, float]]:
        return {
            "poisson_steady": scenario_poisson_steady(
                pool, n_requests, rate_hz, seed=23
            ),
            "burst": scenario_burst(pool, n_bursts, gap_s=0.003, seed=29),
            "saturation": scenario_saturation(
                pool, saturation_requests, reps, seed=31
            ),
        }

    with use_profile(None):
        uncalibrated = run_queue_scenarios()
        uncalibrated["offline_matrix_dtw"] = scenario_offline_matrix(
            matrix_n, SERIES_LENGTH, n_jobs=4, profile=None
        )
    if identical_policy:
        calibrated = {key: dict(row) for key, row in uncalibrated.items()}
    else:
        with use_profile(profile):
            calibrated = run_queue_scenarios()
    offline_calibrated_decision = resolve_backend(
        matrix_n, matrix_n, SERIES_LENGTH, "dtw", 4, None, True, profile=profile
    )
    offline_uncalibrated = uncalibrated["offline_matrix_dtw"]
    if (
        offline_calibrated_decision[0] == offline_uncalibrated["backend_resolved"]
        and offline_calibrated_decision[1] == offline_uncalibrated["n_jobs_resolved"]
    ):
        # Same scheduling decision — same code would run; report the one
        # measurement for both modes.
        calibrated["offline_matrix_dtw"] = dict(offline_uncalibrated)
        calibrated["offline_matrix_dtw"]["identical_path"] = True
    else:
        with use_profile(profile):
            calibrated["offline_matrix_dtw"] = scenario_offline_matrix(
                matrix_n, SERIES_LENGTH, n_jobs=4, profile=profile
            )
            calibrated["offline_matrix_dtw"]["identical_path"] = False

    for key in uncalibrated:
        scenarios[key] = {
            "uncalibrated": uncalibrated[key],
            "calibrated": calibrated[key],
        }

    comparison: List[Dict[str, object]] = []
    for label, scenario, stat, larger_is_better in COMPARISON_ROWS:
        u = float(uncalibrated[scenario][stat])
        c = float(calibrated[scenario][stat])
        if larger_is_better:
            no_slower = c >= u * 0.98
            strictly_faster = c > u * 1.02
        else:
            no_slower = c <= u * 1.02 + 1e-9
            strictly_faster = c < u * 0.98 - 1e-9
        comparison.append(
            {
                "row": label,
                "uncalibrated": u,
                "calibrated": c,
                "calibrated_no_slower": no_slower,
                "calibrated_strictly_better": strictly_faster,
            }
        )

    report = {
        "benchmark": "serving/offline load under static vs calibrated scheduling",
        "smoke": smoke,
        "cpu_count": effective_n_jobs(-1),
        "drop_deadline_s": DROP_DEADLINE_S,
        "profile": {
            "max_batch": profile.serving_max_batch,
            "max_latency_s": round(profile.serving_max_latency_s, 6),
            "process_spawn_s": round(profile.overheads["process_spawn_s"], 6),
            "thread_spawn_s": round(profile.overheads["thread_spawn_s"], 6),
            "identical_to_static_policy": identical_policy,
        },
        "static_policy": {
            "max_batch": DEFAULT_MAX_BATCH,
            "max_latency_s": DEFAULT_MAX_LATENCY_S,
        },
        "scenarios": scenarios,
        "comparison": comparison,
        "calibrated_no_slower_on_every_row": all(
            row["calibrated_no_slower"] for row in comparison
        ),
        "calibrated_strictly_better_somewhere": any(
            row["calibrated_strictly_better"] for row in comparison
        ),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_load_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the load-simulator harness."""
    import sys

    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_load.json"
    )
    report = run_benchmark(smoke=True)
    assert set(report["scenarios"]) == {
        "poisson_steady",
        "burst",
        "saturation",
        "offline_matrix_dtw",
    }
    for scenario in ("poisson_steady", "burst", "saturation"):
        for mode in ("uncalibrated", "calibrated"):
            row = report["scenarios"][scenario][mode]
            assert row["completed"] == row["requests"]
    assert (tmp_path / "BENCH_load.json").exists()


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        import tempfile

        OUTPUT = Path(tempfile.gettempdir()) / "BENCH_load_smoke.json"
        print(json.dumps(run_benchmark(smoke=True), indent=2))
    else:
        print(json.dumps(run_benchmark(), indent=2))
