"""Micro-benchmark: serial vs parallel distance-matrix wall-clock.

Times ``pairwise_distances`` on an ``n=200``, ``m=128`` CBF sample for SBD
and DTW — the two measures bracketing the engine's kernel families
(vectorized FFT vs generic per-pair loop) — on the serial reference path
and on the process backend, and records the speedups in
``BENCH_parallel.json`` at the repo root.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_parallel_matrix.py

or through pytest (the full-size run is marked ``slow``; the default
selection runs a scaled-down smoke version)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_matrix.py -m slow

Interpretation: the speedup is bounded by physical cores — the JSON
records ``cpu_count`` so results from a single-core container (speedup
~1x or below, pool overhead with nothing to parallelize against) are not
mistaken for an engine regression. On a 4-core machine the DTW matrix,
whose ``n (n - 1) / 2 = 19900`` pure-Python pair evaluations dominate,
scales near-linearly.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import make_cbf
from repro.distances import pairwise_distances
from repro.parallel import effective_n_jobs
from repro.preprocessing import zscore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_parallel.json"

BENCH_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "200"))
BENCH_M = int(os.environ.get("REPRO_BENCH_PARALLEL_M", "128"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_PARALLEL_JOBS", "4"))


def _sample(n: int, m: int) -> np.ndarray:
    per_class = max(n // 3, 1)
    X, _ = make_cbf(per_class, m, np.random.default_rng(0))
    while X.shape[0] < n:  # top up to exactly n rows
        extra, _ = make_cbf(1, m, np.random.default_rng(X.shape[0]))
        X = np.vstack([X, extra])
    return zscore(X[:n])


def run_benchmark(n: int = BENCH_N, m: int = BENCH_M, n_jobs: int = BENCH_JOBS) -> dict:
    X = _sample(n, m)
    results = {}
    for metric in ("sbd", "dtw"):
        start = time.perf_counter()
        serial = pairwise_distances(X, metric)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = pairwise_distances(
            X, metric, n_jobs=n_jobs, backend="processes"
        )
        processes_s = time.perf_counter() - start

        assert np.allclose(serial, parallel, atol=1e-12), (
            f"parallel {metric} matrix diverged from serial"
        )
        results[metric] = {
            "serial_s": round(serial_s, 4),
            "processes_s": round(processes_s, 4),
            "speedup": round(serial_s / max(processes_s, 1e-9), 3),
        }
    report = {
        "benchmark": "pairwise_distances serial vs processes",
        "n": n,
        "m": m,
        "n_jobs_requested": n_jobs,
        "cpu_count": effective_n_jobs(-1),
        "results": results,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.slow
def test_bench_parallel_matrix_full():
    """Full-size (n=200, m=128) benchmark; writes BENCH_parallel.json."""
    report = run_benchmark()
    for metric, row in report["results"].items():
        assert row["serial_s"] > 0 and row["processes_s"] > 0
    # The speedup claim only holds with real cores to spread across.
    if report["cpu_count"] >= 4:
        assert report["results"]["dtw"]["speedup"] >= 2.0


def test_bench_parallel_matrix_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    import sys

    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_parallel.json"
    )
    report = run_benchmark(n=24, m=32, n_jobs=2)
    assert set(report["results"]) == {"sbd", "dtw"}
    assert (tmp_path / "BENCH_parallel.json").exists()


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        # CI-sized harness check; keep the committed full-size JSON
        # untouched by writing the scaled-down report to a temp path.
        import tempfile

        OUTPUT = Path(tempfile.gettempdir()) / "BENCH_parallel_smoke.json"
        print(json.dumps(run_benchmark(n=24, m=32, n_jobs=2), indent=2))
    else:
        print(json.dumps(run_benchmark(), indent=2))
