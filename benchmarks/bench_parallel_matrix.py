"""Micro-benchmark: serial reference vs the cost model's resolved config.

Earlier revisions forced ``backend="processes"`` and recorded whatever
happened — which, on a 1-core container, was a 0.41x "speedup": the pool
spawned, copied the dataset into shared memory, and lost to serial with
nothing to parallelize against. That row measured a *pathological
configuration the scheduler should never pick*, not the engine.

This version times what a user actually gets: ``pairwise_distances`` with
``backend=None, n_jobs=4`` lets the cost model resolve the backend (the
``n_jobs`` request clamps to the available CPUs first, so a 1-core box
always resolves to serial). When the resolved configuration *is* the
serial reference, both sides would run byte-for-byte the same code —
timing it twice measures clock noise, not scheduling — so the row reports
``auto_s = serial_s`` with ``identical_path: true`` and a speedup of
exactly 1.0. By construction the auto path is never slower than serial:
either it picks serial, or it picked a pool because the measured/static
cost model expects a win on this machine.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_parallel_matrix.py

or through pytest (the full-size run is marked ``slow``; the default
selection runs a scaled-down smoke version)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_matrix.py -m slow

The JSON records ``cpu_count`` and the resolved backend per metric so a
single-core result (everything serial, speedup 1.0) reads as the
scheduler doing its job, not as an engine regression.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import make_cbf
from repro.distances import pairwise_distances
from repro.parallel import effective_n_jobs, resolve_backend
from repro.preprocessing import zscore

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_parallel.json"

BENCH_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "200"))
BENCH_M = int(os.environ.get("REPRO_BENCH_PARALLEL_M", "128"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_PARALLEL_JOBS", "4"))


def _sample(n: int, m: int) -> np.ndarray:
    per_class = max(n // 3, 1)
    X, _ = make_cbf(per_class, m, np.random.default_rng(0))
    while X.shape[0] < n:  # top up to exactly n rows
        extra, _ = make_cbf(1, m, np.random.default_rng(X.shape[0]))
        X = np.vstack([X, extra])
    return zscore(X[:n])


def run_benchmark(n: int = BENCH_N, m: int = BENCH_M, n_jobs: int = BENCH_JOBS) -> dict:
    X = _sample(n, m)
    results = {}
    for metric in ("sbd", "dtw"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # n_jobs clamp
            backend_resolved, jobs_resolved = resolve_backend(
                n, n, m, metric, n_jobs, None, True
            )
            start = time.perf_counter()
            serial = pairwise_distances(X, metric)
            serial_s = time.perf_counter() - start

            identical_path = backend_resolved == "serial"
            if identical_path:
                # The resolver picked the reference configuration; timing
                # the same code twice only measures noise.
                auto = serial
                auto_s = serial_s
            else:
                start = time.perf_counter()
                auto = pairwise_distances(X, metric, n_jobs=n_jobs)
                auto_s = time.perf_counter() - start

        assert np.allclose(serial, auto, atol=1e-12), (
            f"auto-resolved {metric} matrix diverged from serial"
        )
        results[metric] = {
            "serial_s": round(serial_s, 4),
            "auto_s": round(auto_s, 4),
            "backend_resolved": backend_resolved,
            "n_jobs_resolved": jobs_resolved,
            "identical_path": identical_path,
            "speedup": round(serial_s / max(auto_s, 1e-9), 3),
        }
    report = {
        "benchmark": "pairwise_distances serial vs cost-model auto-resolution",
        "n": n,
        "m": m,
        "n_jobs_requested": n_jobs,
        "cpu_count": effective_n_jobs(-1),
        "results": results,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.slow
def test_bench_parallel_matrix_full():
    """Full-size (n=200, m=128) benchmark; writes BENCH_parallel.json."""
    report = run_benchmark()
    for metric, row in report["results"].items():
        assert row["serial_s"] > 0 and row["auto_s"] > 0
        # The auto path never loses to serial: identical-path rows are
        # exactly 1.0, pool rows must have earned their spawn cost.
        assert row["speedup"] >= (1.0 if row["identical_path"] else 0.9)
    if report["cpu_count"] == 1:
        assert all(
            row["backend_resolved"] == "serial"
            for row in report["results"].values()
        )


def test_bench_parallel_matrix_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    import sys

    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_parallel.json"
    )
    report = run_benchmark(n=24, m=32, n_jobs=2)
    assert set(report["results"]) == {"sbd", "dtw"}
    for row in report["results"].values():
        assert row["speedup"] >= 1.0 or not row["identical_path"]
    assert (tmp_path / "BENCH_parallel.json").exists()


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        # CI-sized harness check; keep the committed full-size JSON
        # untouched by writing the scaled-down report to a temp path.
        import tempfile

        OUTPUT = Path(tempfile.gettempdir()) / "BENCH_parallel_smoke.json"
        print(json.dumps(run_benchmark(n=24, m=32, n_jobs=2), indent=2))
    else:
        print(json.dumps(run_benchmark(), indent=2))
