"""Ablation — k-DBA refinements per iteration (paper footnote 8).

The paper notes that performing five DBA refinements per k-means iteration
(instead of one) "improves the Rand Index by 4% but runtime increases by
30%". This ablation reruns k-DBA with 1 vs 3 refinements per iteration on
a small warped panel and reports both quality and runtime.
"""

import numpy as np

from conftest import write_report
from repro import KDBA, rand_index
from repro.datasets import load_dataset
from repro.harness import format_table, timed

DATASETS = ["WarpedSines", "WarpedPulses"]
N_RUNS = 2


def test_ablation_kdba_refinements(benchmark):
    import warnings

    from repro.exceptions import ConvergenceWarning

    datasets = [load_dataset(n) for n in DATASETS]
    ds0 = datasets[0]
    benchmark.pedantic(
        lambda: KDBA(ds0.n_classes, window=0.1, random_state=0,
                     max_iter=3).fit(ds0.X),
        rounds=1, iterations=1,
    )

    rows = []
    stats = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for refinements in (1, 3):
            scores = []
            total = 0.0
            for ds in datasets:
                for run in range(N_RUNS):
                    model = KDBA(
                        ds.n_classes, window=0.1,
                        refinements_per_iter=refinements,
                        random_state=100 + run, max_iter=10,
                    )
                    _, elapsed = timed(model.fit, ds.X)
                    total += elapsed
                    scores.append(rand_index(ds.y, model.labels_))
            stats[refinements] = (float(np.mean(scores)), total)
            rows.append([refinements, stats[refinements][0], total])
    report = format_table(
        ["Refinements/iter", "Mean Rand Index", "Total seconds"], rows,
        title="Ablation (footnote 8): k-DBA refinements per iteration",
    )
    write_report("ablation_kdba_refinements", report)

    # Both configurations must produce sane partitions; on a 2-dataset panel
    # the quality difference is dominated by run-to-run variance (the paper's
    # footnote-8 effect, +4% RI for 5 refinements, is measured over all 48
    # datasets), so the assertion only guards against degenerate behavior.
    assert all(0.4 <= stats[r][0] <= 1.0 for r in (1, 3))
    assert all(stats[r][1] > 0.0 for r in (1, 3))
