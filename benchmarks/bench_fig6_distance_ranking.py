"""Figure 6 — average ranks of distance measures with the Nemenyi test.

Regenerates the paper's Figure 6: the Friedman test over the per-dataset
1-NN accuracies of ED, SBD, cDTW5, and cDTWopt, followed by the post-hoc
Nemenyi critical difference. Expected shape: cDTWopt ranked first, then
cDTW5 and SBD with no significant difference among the three, and ED ranked
last, significantly worse.
"""

import numpy as np

from conftest import write_report
from repro.harness import format_rank_line
from repro.stats import friedman_test, nemenyi_groups, nemenyi_test


def test_fig6_ranking(benchmark, distance_eval):
    names, accuracies, _, _ = distance_eval
    measures = ["cDTWopt", "cDTW5", "SBD", "ED"]
    matrix = np.column_stack([accuracies[m] for m in measures])

    result = benchmark(friedman_test, matrix)
    nem = nemenyi_test(matrix)
    groups = nemenyi_groups(matrix, measures)

    report = format_rank_line(
        measures, nem.average_ranks, nem.critical_difference,
        title=f"Figure 6: distance-measure ranks over {len(names)} datasets",
    )
    report += (
        f"\n  Friedman chi2={result.statistic:.3f} p={result.p_value:.4f}"
        f" (Iman-Davenport F={result.iman_davenport:.3f}"
        f" p={result.iman_davenport_p_value:.4f})"
    )
    report += "\n  Nemenyi groups (wiggly line): " + "; ".join(
        "{" + ", ".join(g) + "}" for g in groups
    )
    write_report("fig6_distance_ranking", report)

    ranks = dict(zip(measures, nem.average_ranks))
    assert ranks["ED"] == max(ranks.values())  # ED ranked last, as in Fig. 6
