"""Table 4 — hierarchical, spectral, and k-medoids methods vs k-AVG+ED.

Regenerates the paper's Table 4: agglomerative hierarchical clustering with
single/average/complete linkage, normalized spectral clustering, and PAM,
each combined with ED, cDTW (5% band), and SBD over precomputed
dissimilarity matrices, compared against the k-AVG+ED baseline.

Expected shape: hierarchical methods underperform k-AVG+ED (linkage choice
matters more than the distance); PAM+cDTW / PAM+SBD / S+SBD are the only
combinations at or above the baseline, approaching k-Shape's accuracy.
"""

import numpy as np

from conftest import write_report
from repro.harness import format_comparison_table
from repro.stats import compare_to_baseline


def test_table4_nonscalable(benchmark, nonscalable_eval, kmeans_variants_eval):
    ds_names, scores = nonscalable_eval
    km_names, km_scores, _ = kmeans_variants_eval
    assert ds_names == km_names  # same dataset panel

    from repro.distances import pairwise_distances
    from repro.datasets import load_dataset

    ds = load_dataset(ds_names[0])
    # The timed kernel: the dissimilarity-matrix computation that makes
    # these methods non-scalable (here with the cheap measure).
    benchmark(pairwise_distances, ds.X, "sbd")

    table_scores = {"k-AVG+ED": km_scores["k-AVG+ED"]}
    order = ["H-S+ED", "H-S+cDTW", "H-S+SBD",
             "H-A+ED", "H-A+cDTW", "H-A+SBD",
             "H-C+ED", "H-C+cDTW", "H-C+SBD",
             "S+ED", "S+cDTW", "S+SBD",
             "PAM+ED", "PAM+cDTW", "PAM+SBD"]
    table_scores.update({m: scores[m] for m in order})
    rows = compare_to_baseline(table_scores, "k-AVG+ED", alpha=0.01)
    report = format_comparison_table(
        rows, "k-AVG+ED", score_name="Rand Index",
        title=f"Table 4: non-scalable methods vs k-AVG+ED over {len(ds_names)} datasets",
    )
    write_report("table4_nonscalable", report)

    by_name = {r.name: r for r in rows}
    # Reproduction shape: SBD lifts both spectral clustering and PAM over
    # their ED counterparts (the paper: S+SBD and PAM+SBD are the only
    # spectral/medoid combinations that challenge k-AVG+ED).
    assert by_name["S+SBD"].mean_score >= by_name["S+ED"].mean_score
    assert by_name["PAM+SBD"].mean_score >= by_name["PAM+ED"].mean_score
