"""Ablation — centroid/averaging methods on shifted vs warped families.

DESIGN.md calls out the centroid rule as k-Shape's second key design choice
(Section 3.2). This ablation compares every averaging technique the paper
reviews (Section 2.5) — arithmetic mean, DBA, NLAAF, PSA, the KSC centroid,
and shape extraction — on two synthetic families:

* a *shift* family (one pattern at random phases): shape extraction's home
  turf;
* a *warp* family (one pattern under local warping): DBA's home turf.

Each centroid is scored by its mean squared similarity to the members under
the matching geometry (NCCc for the shift family, DTW for the warp family).
Expected shape: shape extraction dominates on shifts; DBA is the best or
near-best DTW-based method on warps; the plain mean trails on both.
"""

import numpy as np

from conftest import write_report
from repro.averaging import arithmetic_mean, dba, ksc_centroid, nlaaf, psa
from repro.core import ncc, shape_extraction
from repro.distances import dtw
from repro.harness import format_table
from repro.preprocessing import shift_series, zscore


def _shift_family(rng, n=14, m=96):
    t = np.linspace(0, 1, m)
    base = zscore(np.sin(2 * np.pi * 2 * t) + 0.6 * np.sin(2 * np.pi * 5 * t))
    rows = [
        shift_series(base, int(rng.integers(-8, 9))) + rng.normal(0, 0.1, m)
        for _ in range(n)
    ]
    return zscore(np.asarray(rows))


def _warp_family(rng, n=14, m=96):
    t = np.linspace(0, 1, m)
    rows = []
    for _ in range(n):
        jitter = 0.04 * np.sin(2 * np.pi * (t + rng.uniform(0, 1)))
        rows.append(np.sin(2 * np.pi * 2 * (t + jitter)) + rng.normal(0, 0.1, m))
    return zscore(np.asarray(rows))


def _ncc_similarity(centroid, X):
    """Mean max-NCCc of the centroid to the members (higher = better)."""
    return float(np.mean([ncc(x, centroid, "c").max() for x in X]))


def _dtw_cost(centroid, X):
    """Mean DTW distance of the centroid to the members (lower = better)."""
    return float(np.mean([dtw(centroid, x) for x in X]))


def test_ablation_averaging(benchmark):
    rng = np.random.default_rng(42)
    shift_X = _shift_family(rng)
    warp_X = _warp_family(rng)

    benchmark(shape_extraction, shift_X, shift_X[0])

    methods = {
        "arithmetic mean": lambda X: arithmetic_mean(X),
        "DBA": lambda X: dba(X, n_iterations=8, rng=0),
        "NLAAF": lambda X: nlaaf(X, rng=0),
        "PSA": lambda X: psa(X),
        "KSC centroid": lambda X: ksc_centroid(X, reference=X[0]),
        "shape extraction": lambda X: shape_extraction(X, reference=X[0]),
    }
    rows = []
    shift_scores = {}
    warp_costs = {}
    for name, fn in methods.items():
        c_shift = fn(shift_X)
        c_warp = fn(warp_X)
        shift_scores[name] = _ncc_similarity(c_shift, shift_X)
        warp_costs[name] = _dtw_cost(c_warp, warp_X)
        rows.append([name, shift_scores[name], warp_costs[name]])
    report = format_table(
        ["Averaging method", "shift family: mean NCCc (higher better)",
         "warp family: mean DTW (lower better)"],
        rows,
        title="Ablation: centroid methods on shifted vs warped families",
    )
    write_report("ablation_averaging", report)

    # Shape extraction must beat the arithmetic mean on the shift family.
    assert shift_scores["shape extraction"] > shift_scores["arithmetic mean"]
    # DBA must beat the arithmetic mean under DTW on the warp family.
    assert warp_costs["DBA"] < warp_costs["arithmetic mean"]
