"""Micro-benchmark: sharded fleet serving, hot swap, and the drift loop.

The fleet subsystem (:mod:`repro.serving.fleet`) shards a keyed query
stream across several :class:`~repro.serving.ShapePredictor` +
:class:`~repro.serving.MicroBatchQueue` pairs behind a consistent-hash
:class:`~repro.serving.ShardRouter`, hot-swaps model versions from a
:class:`~repro.serving.ModelRegistry` without dropping requests, and
closes the loop on drift with a background refit plus staged canary
promotion. This bench exercises all three on a CBF workload whose
baseline drifts over the request sequence:

* **serving** — a keyed stream routed and answered shard-by-shard;
  per-shard p50/p99 latency and queue occupancy from
  :meth:`~repro.serving.ShapeFleet.stats`;
* **hot swap** — repeated version flips with requests pending, timing
  the per-shard drain-and-switch pause (max and p99);
* **drift loop** — a drifting stream observed until the detector fires,
  then one :meth:`~repro.serving.ShapeFleet.run_drift_cycle` turn:
  warm-started refit, registry publish, canary promotion verdict.

The report lands in ``BENCH_fleet.json`` at the repo root.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_fleet.py

scaled down (CI)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke

or through pytest (the full-size run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -m slow
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import KShape
from repro.datasets import make_cbf
from repro.preprocessing import zscore
from repro.serving import ModelRegistry, ShapeFleet

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fleet.json"

BENCH_N_FIT = int(os.environ.get("REPRO_BENCH_FLEET_NFIT", "90"))
BENCH_N_QUERIES = int(os.environ.get("REPRO_BENCH_FLEET_NQUERIES", "600"))
BENCH_M = int(os.environ.get("REPRO_BENCH_FLEET_M", "256"))
BENCH_K = int(os.environ.get("REPRO_BENCH_FLEET_K", "3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_FLEET_SEED", "13"))
BENCH_SHARDS = int(os.environ.get("REPRO_BENCH_FLEET_SHARDS", "4"))
BENCH_SWAPS = int(os.environ.get("REPRO_BENCH_FLEET_SWAPS", "10"))


def make_workload(n_fit: int, n_queries: int, m: int, seed: int):
    """A stable fit set plus a query stream whose regime drifts.

    The fit set and the first half of the stream share the undrifted CBF
    distribution; over the second half each row blends into a sine family
    the model never saw, with the blend weight ramping from 0 to 1 — the
    drift detector's baseline freezes on clean traffic and the recent
    window walks off it.
    """
    rng = np.random.default_rng(seed)
    total = n_fit + n_queries
    X, _ = make_cbf(-(-total // 3), m, rng)  # ceil division per class
    X = zscore(X[rng.permutation(X.shape[0])[:total]])
    fit, stream = X[:n_fit], X[n_fit:].copy()
    t = np.linspace(0.0, 1.0, m)
    half = n_queries // 2
    weight = np.linspace(0.0, 1.0, half)
    for i in range(half):
        alien = np.sin(2 * np.pi * (3.3 * t + rng.uniform()))
        row = n_queries - half + i
        stream[row] = (1.0 - weight[i]) * stream[row] + weight[i] * alien
    return fit, zscore(stream)


def run_benchmark(
    n_fit: int = BENCH_N_FIT,
    n_queries: int = BENCH_N_QUERIES,
    m: int = BENCH_M,
    k: int = BENCH_K,
    seed: int = BENCH_SEED,
    n_shards: int = BENCH_SHARDS,
    n_swaps: int = BENCH_SWAPS,
    output: Path | None = None,
    registry_dir: Path | None = None,
) -> dict:
    X_fit, stream = make_workload(n_fit, n_queries, m, seed)
    keys = [f"series-{i % max(n_queries // 2, 1):04d}"
            for i in range(n_queries)]
    stable = stream[: n_queries // 2]
    drifted = stream[n_queries // 2:]

    if registry_dir is None:
        import tempfile

        registry_dir = Path(tempfile.mkdtemp()) / "registry"
    registry = ModelRegistry(str(registry_dir))
    v1 = registry.publish(KShape(n_clusters=k, random_state=seed).fit(X_fit))
    v2 = registry.publish(
        KShape(n_clusters=k, random_state=seed + 1).fit(zscore(drifted))
    )

    fleet = ShapeFleet(
        registry,
        n_shards=n_shards,
        version=v1,
        autostart=False,
        maintainer={"baseline_window": stable.shape[0], "recent_window": 64},
    )

    # --- serving: route the stable half, flushing shard queues per wave.
    start = time.perf_counter()
    futures = [fleet.submit(key, x) for key, x in zip(keys, stable)]
    fleet.flush()
    labels = np.array([f.result()[0] for f in futures])
    serve_s = time.perf_counter() - start
    # Snapshot now: swaps retire the live queues, so the per-shard view
    # of the serving phase only exists before the first flip.
    serve_stats = fleet.stats()

    # --- hot swap: flip versions with requests pending on every shard.
    swap_reports = []
    for i in range(n_swaps):
        pending = [
            fleet.submit(key, x)
            for key, x in zip(keys[: 2 * n_shards], stable[: 2 * n_shards])
        ]
        report = fleet.swap_to(v2 if i % 2 == 0 else v1)
        assert report.outcome == "swapped", report.reason
        # The drain answers the backlog from the incumbent version.
        assert all(f.done() for f in pending)
        swap_reports.append(report)
    if n_swaps % 2:  # land back on v1 so the drift loop starts stale
        fleet.swap_to(v1)

    # --- drift loop: freeze the baseline on clean traffic, then observe
    # the drifted tail until the detector fires and run one cycle.
    fleet.observe(keys[: stable.shape[0]], stable)
    fleet.observe(keys[stable.shape[0]:], drifted)
    drift = fleet.check_drift()
    start = time.perf_counter()
    cycle = fleet.run_drift_cycle(keys[stable.shape[0]:], drifted)
    cycle_s = time.perf_counter() - start

    stats = fleet.stats()
    per_shard = {
        name: {
            "completed": shard.completed,
            "batches": shard.batches,
            "p50_latency_ms": round(1e3 * shard.p50_latency_s, 4),
            "p99_latency_ms": round(1e3 * shard.p99_latency_s, 4),
            "max_queue_depth": shard.max_queue_depth,
        }
        for name, shard in sorted(serve_stats.per_shard.items())
    }
    pauses_ms = [1e3 * r.max_pause_s for r in swap_reports]
    fleet.close()

    report = {
        "benchmark": "fleet serving, hot swap, and drift loop",
        "n_fit": n_fit,
        "n_queries": n_queries,
        "m": m,
        "k": k,
        "seed": seed,
        "n_shards": n_shards,
        "serving": {
            "total_s": round(serve_s, 4),
            "queries_per_s": round(stable.shape[0] / max(serve_s, 1e-9), 1),
            "fleet_p50_latency_ms": round(1e3 * serve_stats.p50_latency_s, 4),
            "fleet_p99_latency_ms": round(1e3 * serve_stats.p99_latency_s, 4),
            "label_range_ok": bool(
                labels.min() >= 0 and labels.max() < k
            ),
            "per_shard": per_shard,
        },
        "hot_swap": {
            "n_swaps": len(swap_reports),
            "pause_p50_ms": round(float(np.percentile(pauses_ms, 50)), 4),
            "pause_p99_ms": round(float(np.percentile(pauses_ms, 99)), 4),
            "pause_max_ms": round(max(pauses_ms), 4),
            "drained_total": int(
                sum(sum(r.drained.values()) for r in swap_reports)
            ),
        },
        "drift_loop": {
            "drift_z_score": round(drift.z_score, 3),
            "drifted": bool(drift.drifted),
            "refit_version": cycle.refit_version,
            "cycle_s": round(cycle_s, 4),
            "outcome": (
                cycle.promotion.outcome if cycle.promotion else "no_drift"
            ),
            "distance_ratio": (
                round(cycle.promotion.distance_ratio, 4)
                if cycle.promotion and cycle.promotion.distance_ratio
                is not None
                else None
            ),
            "serving_version_after": stats.version,
        },
        "requests_lost": int(stats.requests - stats.completed
                             - stats.rejected),
    }
    (OUTPUT if output is None else output).write_text(
        json.dumps(report, indent=2) + "\n"
    )
    return report


@pytest.mark.slow
def test_bench_fleet_full():
    """Full-size benchmark; writes BENCH_fleet.json at the repo root."""
    report = run_benchmark()
    assert report["requests_lost"] == 0
    assert report["serving"]["label_range_ok"]
    # Every shard served traffic and measured real latencies.
    for shard in report["serving"]["per_shard"].values():
        assert shard["completed"] > 0
        assert shard["p99_latency_ms"] >= shard["p50_latency_ms"] > 0.0
    # Swap pauses are measured, bounded, and never dropped a request.
    assert report["hot_swap"]["pause_p99_ms"] >= \
        report["hot_swap"]["pause_p50_ms"] > 0.0
    assert report["hot_swap"]["drained_total"] > 0
    # The drifting tail must trip the detector and promote the refit.
    assert report["drift_loop"]["drifted"]
    assert report["drift_loop"]["outcome"] == "promoted"
    # The refit lands after the two seeded versions and takes over.
    assert report["drift_loop"]["serving_version_after"] == \
        report["drift_loop"]["refit_version"] == "v0003"


def test_bench_fleet_smoke(tmp_path, monkeypatch):
    """Scaled-down correctness pass of the benchmark harness itself."""
    monkeypatch.setattr(
        sys.modules[__name__], "OUTPUT", tmp_path / "BENCH_fleet.json"
    )
    report = run_benchmark(
        n_fit=24, n_queries=80, m=64, k=2, seed=3, n_shards=2, n_swaps=3,
        registry_dir=tmp_path / "registry",
    )
    assert report["requests_lost"] == 0
    assert report["hot_swap"]["n_swaps"] == 3
    assert report["hot_swap"]["pause_max_ms"] > 0.0
    assert report["drift_loop"]["drifted"]
    assert report["drift_loop"]["outcome"] in ("promoted", "rolled_back")
    assert (tmp_path / "BENCH_fleet.json").exists()


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # CI-sized pass; keep the committed full-size JSON untouched.
        import tempfile

        tmp = Path(tempfile.mkdtemp())
        print(json.dumps(
            run_benchmark(n_fit=24, n_queries=80, m=64, k=2, seed=3,
                          n_shards=2, n_swaps=3,
                          output=tmp / "BENCH_fleet.json",
                          registry_dir=tmp / "registry"),
            indent=2,
        ))
    else:
        print(json.dumps(run_benchmark(), indent=2))
