"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures by calling
the evaluation protocols in :mod:`repro.harness.experiments`. Because the
original evaluation consumed two months on a 10-server cluster, the default
configuration is scaled down (fewer datasets, fewer repeated runs) while
preserving the comparisons' structure; set ``REPRO_BENCH_FULL=1`` to run
the full-scale configuration.

Expensive intermediate results (1-NN accuracies, clustering scores,
dissimilarity matrices) are computed once per session in fixtures and
shared across the benches that need them. Each bench writes its rendered
report to ``results/<experiment>.txt`` so EXPERIMENTS.md can reference the
exact output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import load_dataset
from repro.harness import (
    compute_dissimilarity_matrices,
    evaluate_distance_measures,
    evaluate_kmeans_variants,
    evaluate_lb_runtimes,
    evaluate_nonscalable_methods,
)

BENCH_FULL = os.environ.get("REPRO_BENCH_FULL") == "1"

# Parallel execution of the benches' dissimilarity matrices: worker count
# and backend for repro.parallel (e.g. REPRO_BENCH_NJOBS=4
# REPRO_BENCH_BACKEND=processes). Defaults keep the seed serial behavior.
BENCH_NJOBS = int(os.environ.get("REPRO_BENCH_NJOBS", "0")) or None
BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND") or None

# Datasets used by the scaled-down distance-measure evaluation (Table 2,
# Figures 5-6). Chosen to span families while keeping DTW tractable.
DISTANCE_DATASETS = (
    ["SineSquare", "TriSaw", "FreqSines", "ShortWaves", "PulsePosition",
     "Ramps", "Steps3", "WarpedSines", "ECGFiveDays-syn", "CBF"]
    if not BENCH_FULL
    else None  # all 24
)

# Datasets for the clustering evaluations (Tables 3-4, Figures 7-9).
CLUSTERING_DATASETS = (
    ["TriSaw", "FreqSines", "PulseWidth", "Steps3",
     "Bumps5", "ECGFiveDays-syn"]
    if not BENCH_FULL
    else None
)

N_PARTITIONAL_RUNS = 10 if BENCH_FULL else 3
N_SPECTRAL_RUNS = 100 if BENCH_FULL else 5
CDTW_OPT_WINDOWS = (
    tuple(w / 100 for w in range(1, 11)) if BENCH_FULL
    else (0.02, 0.05, 0.08, 0.10)
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_datasets(names):
    if names is None:
        from repro.datasets import list_datasets

        names = list_datasets()
    return [load_dataset(n) for n in names]


def write_report(name: str, text: str) -> None:
    """Print a report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


# ---------------------------------------------------------------------------
# Shared expensive computations (session-scoped).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def distance_eval():
    """Table 2's accuracy/runtime evaluation over the distance panel.

    Returns ``(dataset_names, accuracies, runtimes, tuned_windows)``.
    """
    result = evaluate_distance_measures(
        bench_datasets(DISTANCE_DATASETS),
        cdtw_opt_windows=CDTW_OPT_WINDOWS,
    )
    return (
        result.dataset_names,
        result.accuracies,
        result.runtimes,
        result.tuned_windows,
    )


@pytest.fixture(scope="session")
def lb_eval():
    """Runtimes of (c)DTW 1-NN with LB_Keogh pruning (Table 2's _LB rows)."""
    return evaluate_lb_runtimes(bench_datasets(DISTANCE_DATASETS))


@pytest.fixture(scope="session")
def kmeans_variants_eval():
    """Table 3's Rand Index + runtime per dataset and k-means variant."""
    result = evaluate_kmeans_variants(
        bench_datasets(CLUSTERING_DATASETS),
        n_runs=N_PARTITIONAL_RUNS,
    )
    return result.dataset_names, result.scores, result.runtimes


@pytest.fixture(scope="session")
def dissimilarity_matrices():
    """Precomputed ED/cDTW5/SBD matrices per clustering dataset (Table 4)."""
    datasets = bench_datasets(CLUSTERING_DATASETS)
    return datasets, compute_dissimilarity_matrices(
        datasets, n_jobs=BENCH_NJOBS, backend=BENCH_BACKEND
    )


@pytest.fixture(scope="session")
def nonscalable_eval(dissimilarity_matrices):
    """Rand Index of the Table 4 methods (hierarchical, spectral, PAM)."""
    datasets, matrices = dissimilarity_matrices
    result = evaluate_nonscalable_methods(
        datasets, matrices, n_spectral_runs=N_SPECTRAL_RUNS
    )
    return result.dataset_names, result.scores
