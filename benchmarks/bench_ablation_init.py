"""Ablation — k-Shape initialization strategies (random vs SBD-plusplus).

The paper's Algorithm 3 initializes memberships uniformly at random. This
ablation compares that against the package's k-means++-style SBD seeding
extension on a panel of archive datasets, reporting mean Rand Index,
iterations to convergence, and single-restart variance across seeds.

Expected shape: both initializations reach comparable quality with
multiple restarts; the ++ seeding tends to reduce across-seed variance on
well-separated data.
"""

import numpy as np

from conftest import bench_datasets, write_report
from repro import KShape, rand_index
from repro.harness import format_table

DATASETS = ["TriSaw", "FreqSines", "PulseWidth", "ECGFiveDays-syn"]
N_SEEDS = 5


def test_ablation_init(benchmark):
    import warnings

    from repro.exceptions import ConvergenceWarning

    datasets = bench_datasets(DATASETS)
    ds0 = datasets[0]
    benchmark.pedantic(
        lambda: KShape(ds0.n_classes, random_state=0, init="plusplus").fit(ds0.X),
        rounds=3, iterations=1,
    )

    rows = []
    summary = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for init in ("random", "plusplus"):
            scores, iters = [], []
            stds = []
            for ds in datasets:
                per_seed = []
                for seed in range(N_SEEDS):
                    model = KShape(
                        ds.n_classes, random_state=seed, init=init
                    ).fit(ds.X)
                    per_seed.append(rand_index(ds.y, model.labels_))
                    iters.append(model.n_iter_)
                scores.append(float(np.mean(per_seed)))
                stds.append(float(np.std(per_seed)))
            summary[init] = (
                float(np.mean(scores)),
                float(np.mean(iters)),
                float(np.mean(stds)),
            )
            rows.append([init, *summary[init]])
    report = format_table(
        ["Init", "Mean Rand Index", "Mean iterations", "Across-seed std"],
        rows,
        title=(
            f"Ablation: k-Shape initialization over {len(DATASETS)} datasets x "
            f"{N_SEEDS} seeds"
        ),
    )
    write_report("ablation_init", report)

    # Both initializations must land in the same quality ballpark.
    assert abs(summary["random"][0] - summary["plusplus"][0]) < 0.15
