"""Figure 3 — how data and cross-correlation normalizations move the peak.

Regenerates the paper's Figure 3 study: two sequences whose *shapes* are
offset by half the window (the correct alignment shift is about -m/2), both
riding on a large constant offset. Expected shape, as in the paper:

* NCCb on the raw (unnormalized) data mis-locates the peak — the constant
  offset rewards maximal overlap, pinning the peak near lag 0;
* NCCu on z-normalized data finds a peak but its value is unbounded
  (here > 1), so peaks are not comparable across pairs;
* NCCc on z-normalized data peaks at the correct shift with a value in
  [-1, 1] — the combination SBD adopts.
"""

import numpy as np

from conftest import write_report
from repro.core import ncc, ncc_max
from repro.harness import format_table
from repro.preprocessing import zscore


def _figure3_pair(m=1024, seed=0):
    """Offset-laden pair whose pulses sit half a window apart."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, m)

    def pulse(center, width=0.02):
        return np.exp(-0.5 * ((t - center) / width) ** 2)

    x = 10.0 + pulse(0.3) + rng.normal(0, 0.02, m)
    y = 10.0 + pulse(0.8) + rng.normal(0, 0.02, m)
    return x, y, -m // 2


def test_fig3_normalizations(benchmark):
    x, y, true_shift = _figure3_pair()
    m = x.shape[0]

    benchmark(ncc, zscore(x), zscore(y), "c")

    configs = [
        ("NCCb, raw data", x, y, "b"),
        ("NCCu, z-normalized", zscore(x), zscore(y), "u"),
        ("NCCc, z-normalized", zscore(x), zscore(y), "c"),
    ]
    rows = []
    results = {}
    for label, a, b, norm in configs:
        value, shift = ncc_max(a, b, norm=norm)
        results[norm] = (value, shift)
        rows.append([label, shift, value])
    report = format_table(
        ["Normalization", "Peak shift", "Peak value"], rows,
        title=(
            f"Figure 3: cross-correlation peak for shapes offset by "
            f"{true_shift} samples (m={m})"
        ),
    )
    write_report("fig3_ncc_normalizations", report)

    # NCCb on raw data is dragged toward lag 0 by the offset.
    assert abs(results["b"][1]) < abs(true_shift) // 4
    # NCCu's peak value escapes [-1, 1]: not comparable across pairs.
    assert results["u"][0] > 1.0
    # NCCc recovers the true shift with a bounded value.
    assert abs(results["c"][1] - true_shift) <= m // 64
    assert -1.0 <= results["c"][0] <= 1.0
