"""Extension — raw-based vs feature-based vs model-based clustering.

The paper (Section 2.4) argues for *raw-based* clustering because feature-
and model-based representations are domain-dependent. This bench makes the
contrast concrete: k-Shape on raw sequences vs Euclidean k-means on (a) the
characteristics feature vector [82] and (b) LPC cepstral coefficients [38],
over a panel spanning shape-dominated and structure-dominated datasets.

Expected shape: raw-based k-Shape wins on shape-dominated families (the
features discard the shape); feature/model representations stay competitive
only where classes differ in global structure (trend/noise/frequency).
"""

import numpy as np

from conftest import bench_datasets, write_report
from repro import KShape, TimeSeriesKMeans, rand_index
from repro.features import ar_feature_matrix, extract_feature_matrix
from repro.harness import format_table

DATASETS = ["TriSaw", "FreqSines", "PulseWidth", "Trends3", "ECGFiveDays-syn"]
N_RUNS = 3


def test_ext_representations(benchmark):
    import warnings

    from repro.exceptions import ConvergenceWarning

    datasets = bench_datasets(DATASETS)
    benchmark(extract_feature_matrix, datasets[0].X)

    def cluster_features(F, k, seed):
        model = TimeSeriesKMeans(k, metric="ed", random_state=seed, n_init=2)
        return model.fit_predict(F)

    rows = []
    means = {"raw (k-Shape)": [], "characteristics": [], "AR cepstrum": []}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        for ds in datasets:
            feats = extract_feature_matrix(ds.X)
            ceps = ar_feature_matrix(ds.X, order=4, n_coefficients=8)
            per_method = {}
            for name, run in (
                ("raw (k-Shape)",
                 lambda seed: KShape(ds.n_classes, random_state=seed)
                 .fit_predict(ds.X)),
                ("characteristics",
                 lambda seed: cluster_features(feats, ds.n_classes, seed)),
                ("AR cepstrum",
                 lambda seed: cluster_features(ceps, ds.n_classes, seed)),
            ):
                scores = [
                    rand_index(ds.y, run(1000 + r)) for r in range(N_RUNS)
                ]
                per_method[name] = float(np.mean(scores))
                means[name].append(per_method[name])
            rows.append([ds.name, per_method["raw (k-Shape)"],
                         per_method["characteristics"],
                         per_method["AR cepstrum"]])
    rows.append(["MEAN", *(float(np.mean(means[m])) for m in
                           ("raw (k-Shape)", "characteristics", "AR cepstrum"))])
    report = format_table(
        ["Dataset", "raw (k-Shape)", "characteristics", "AR cepstrum"],
        rows,
        title="Extension: raw-based vs feature-/model-based clustering "
              "(Rand Index)",
    )
    write_report("ext_representations", report)

    # The paper's claim: raw-based clustering is the domain-independent
    # choice — best mean Rand Index across the mixed panel.
    assert np.mean(means["raw (k-Shape)"]) >= np.mean(means["characteristics"]) - 0.02
    assert np.mean(means["raw (k-Shape)"]) >= np.mean(means["AR cepstrum"]) - 0.02
