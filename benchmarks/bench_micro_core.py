"""Micro-benchmarks of the core kernels (regression guard).

Uses pytest-benchmark's statistics to track the primitives every
experiment's runtime story rests on: SBD and its implementation variants
(the Table 2 efficiency ablation at kernel granularity), DTW/cDTW, shape
extraction, and one full k-Shape iteration's worth of batched assignment.
"""

import numpy as np
import pytest

from repro.core import sbd, sbd_no_fft, sbd_no_pow2, shape_extraction
from repro.core._fft_batch import fft_len_for, ncc_c_max_batch, rfft_batch
from repro.distances import cdtw, dtw, euclidean
from repro.preprocessing import zscore

M = 128
rng = np.random.default_rng(7)
X_PAIR = (zscore(rng.normal(0, 1, M)), zscore(rng.normal(0, 1, M)))
CLUSTER = zscore(rng.normal(0, 1, (64, M)))


@pytest.mark.parametrize(
    "fn",
    [euclidean, sbd, sbd_no_pow2, sbd_no_fft, dtw,
     lambda a, b: cdtw(a, b, 0.05)],
    ids=["ed", "sbd", "sbd_nopow2", "sbd_nofft", "dtw", "cdtw5"],
)
def test_distance_kernel(benchmark, fn):
    result = benchmark(fn, *X_PAIR)
    assert result >= 0.0


def test_shape_extraction_kernel(benchmark):
    centroid = benchmark(shape_extraction, CLUSTER, CLUSTER[0])
    assert centroid.shape == (M,)


def test_batched_assignment_kernel(benchmark):
    """One centroid's batched SBD against 64 series (the k-Shape inner op)."""
    fft_len = fft_len_for(M)
    fft_X = rfft_batch(CLUSTER, fft_len)
    norms = np.linalg.norm(CLUSTER, axis=1)
    ref = CLUSTER[0]
    fft_ref = np.fft.rfft(ref, fft_len)
    norm_ref = float(np.linalg.norm(ref))

    values, _ = benchmark(
        ncc_c_max_batch, fft_X, norms, fft_ref, norm_ref, M, fft_len
    )
    assert values.shape == (64,)
