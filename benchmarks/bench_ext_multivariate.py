"""Extension — multivariate k-Shape on channel-coupled records.

Compares three ways of clustering multi-channel records whose channels
share one random phase: (a) multivariate k-Shape with the shared-shift
pooled SBD; (b) univariate k-Shape on each channel separately (best
channel reported); (c) univariate k-Shape on the channels concatenated
into one long sequence (which breaks shift invariance across the seam).

Expected shape: the shared-shift model wins or ties the best single
channel and beats concatenation.
"""

import numpy as np

from conftest import write_report
from repro import KShape, rand_index
from repro.harness import format_table
from repro.multivariate import MultivariateKShape, mv_zscore
from repro.preprocessing import zscore


def _make_records(rng, n_per_class=15, m=96):
    t = np.linspace(0, 1, m)

    def record(freq, phase):
        return np.stack([
            np.sin(2 * np.pi * (freq * t + phase)),
            np.cos(2 * np.pi * (freq * t + phase)),
            0.5 * np.sin(2 * np.pi * (2 * freq * t + phase)),
        ])

    X = np.stack(
        [record(2, rng.uniform(0, 1)) + rng.normal(0, 0.15, (3, m))
         for _ in range(n_per_class)]
        + [record(3, rng.uniform(0, 1)) + rng.normal(0, 0.15, (3, m))
           for _ in range(n_per_class)]
    )
    return mv_zscore(X), np.repeat([0, 1], n_per_class)


def test_ext_multivariate(benchmark):
    rng = np.random.default_rng(17)
    X, y = _make_records(rng)

    benchmark.pedantic(
        lambda: MultivariateKShape(2, random_state=0).fit(X),
        rounds=3, iterations=1,
    )

    mv = MultivariateKShape(2, random_state=0).fit(X)
    ri_mv = rand_index(y, mv.labels_)

    per_channel = []
    for ch in range(X.shape[1]):
        model = KShape(2, random_state=0, n_init=3).fit(zscore(X[:, ch, :]))
        per_channel.append(rand_index(y, model.labels_))
    ri_best_channel = max(per_channel)

    concat = zscore(X.reshape(X.shape[0], -1))
    model = KShape(2, random_state=0, n_init=3).fit(concat)
    ri_concat = rand_index(y, model.labels_)

    rows = [
        ["multivariate k-Shape (shared shift)", ri_mv],
        ["best single channel (univariate)", ri_best_channel],
        ["channels concatenated", ri_concat],
    ]
    report = format_table(
        ["Approach", "Rand Index"], rows,
        title="Extension: multivariate k-Shape on 3-channel records",
    )
    write_report("ext_multivariate", report)

    assert ri_mv >= ri_best_channel - 0.05
    assert ri_mv >= ri_concat - 0.05
