"""Figure 4 — arithmetic mean vs shape extraction on the ECG classes.

Regenerates the paper's Figure 4 comparison: for each ECG class, the
centroid computed with the arithmetic mean and with shape extraction, both
scored by their SBD to a clean class prototype. Expected shape: shape
extraction recovers the class shape far better because the class members
are out of phase, which the mean smears out.
"""

import numpy as np

from conftest import write_report
from repro.averaging import arithmetic_mean
from repro.core import sbd, shape_extraction
from repro.datasets.ecg import ecg_beat, make_ecg_five_days
from repro.harness import format_table
from repro.preprocessing import zscore


def test_fig4_centroids(benchmark):
    X, y = make_ecg_five_days(40, 136, noise=0.10, max_phase=0.35, rng=7)
    X = zscore(X)
    t = np.linspace(0, 1, 136)

    class_a = X[y == 0]
    benchmark(shape_extraction, class_a, class_a[0])

    rows = []
    improvements = []
    for label, kind in ((0, "A"), (1, "B")):
        members = X[y == label]
        prototype = zscore(
            ecg_beat(t, kind, 0.15, np.random.default_rng(0))
        )
        mean_c = zscore(arithmetic_mean(members))
        shape_c = shape_extraction(members, reference=members[0])
        d_mean = sbd(prototype, mean_c)
        d_shape = sbd(prototype, shape_c)
        improvements.append(d_mean - d_shape)
        rows.append([f"class {kind}", d_mean, d_shape])
    report = format_table(
        ["ECG class", "SBD(prototype, mean)", "SBD(prototype, shape-extraction)"],
        rows,
        title="Figure 4: centroid quality on out-of-phase ECG classes",
        float_fmt="{:.4f}",
    )
    write_report("fig4_centroids", report)

    # Shape extraction must beat the arithmetic mean on both classes.
    assert all(delta > 0 for delta in improvements)
