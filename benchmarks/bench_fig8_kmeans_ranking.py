"""Figure 8 — average ranks of the k-means variants with the Nemenyi test.

Expected shape: k-Shape ranked first; KSC, k-DBA, and k-AVG+ED behind it
(the paper finds k-Shape significantly better than all three).
"""

import numpy as np

from conftest import write_report
from repro.harness import format_rank_line
from repro.stats import friedman_test, nemenyi_groups, nemenyi_test


def test_fig8_ranking(benchmark, kmeans_variants_eval):
    names, scores, _ = kmeans_variants_eval
    methods = ["k-Shape", "k-AVG+ED", "KSC", "k-DBA"]
    matrix = np.column_stack([scores[m] for m in methods])

    result = benchmark(friedman_test, matrix)
    nem = nemenyi_test(matrix)
    groups = nemenyi_groups(matrix, methods)

    report = format_rank_line(
        methods, nem.average_ranks, nem.critical_difference,
        title=f"Figure 8: k-means-variant ranks over {len(names)} datasets",
    )
    report += f"\n  Friedman chi2={result.statistic:.3f} p={result.p_value:.4f}"
    report += "\n  Nemenyi groups (wiggly line): " + "; ".join(
        "{" + ", ".join(g) + "}" for g in groups
    )
    write_report("fig8_kmeans_ranking", report)

    ranks = dict(zip(methods, nem.average_ranks))
    assert ranks["k-Shape"] == min(ranks.values())
