#!/usr/bin/env python
"""Build a custom dataset, register a custom distance, and cluster it.

Shows the extension points a downstream user works with:

* :func:`repro.datasets.make_labeled_set` to assemble a labeled dataset
  from per-class pattern makers;
* :func:`repro.distances.register_distance` to add a new measure to the
  registry so every algorithm and the 1-NN evaluator can use it by name;
* the estimator API shared by all clustering methods.

Run:  python examples/custom_pipeline.py
"""

import numpy as np

from repro import Hierarchical, KShape, TimeSeriesKMeans, rand_index
from repro.datasets import make_labeled_set, sine_wave, gaussian_pulse
from repro.distances import get_distance, register_distance
from repro.preprocessing import zscore


def heartbeat(t, rng):
    """A pulse train whose spacing jitters per instance."""
    spacing = rng.uniform(0.28, 0.35)
    out = np.zeros_like(t)
    start = rng.uniform(0.05, 0.15)
    c = start
    while c < 1.0:
        out += gaussian_pulse(t, c, 0.02)
        c += spacing
    return out


def wobble(t, rng):
    """A slow sine with a random phase."""
    return sine_wave(t, 1.5, rng.uniform(0, 1))


def main() -> None:
    X, y = make_labeled_set(
        [heartbeat, wobble], n_per_class=20, length=160,
        noise=0.15, rng=7,
    )
    X = zscore(X)
    print(f"dataset: {X.shape[0]} sequences of length {X.shape[1]}, "
          f"{np.unique(y).shape[0]} classes")

    # A (deliberately simple) custom measure: L1 distance on first
    # differences — compares local slopes instead of levels.
    def slope_l1(a, b):
        return float(np.abs(np.diff(a) - np.diff(b)).sum())

    try:
        register_distance("slope_l1", slope_l1)
    except Exception:
        pass  # already registered on a repeat run
    assert get_distance("slope_l1") is slope_l1

    print("\nClustering with three methods:")
    for name, model in (
        ("k-Shape", KShape(2, random_state=0, n_init=3)),
        ("k-means + slope_l1", TimeSeriesKMeans(2, metric="slope_l1",
                                                random_state=0, n_init=3)),
        ("Hierarchical complete + SBD", Hierarchical(2, "complete",
                                                     metric="sbd")),
    ):
        labels = model.fit_predict(X)
        print(f"  {name:28s} Rand Index = {rand_index(y, labels):.3f}")


if __name__ == "__main__":
    main()
