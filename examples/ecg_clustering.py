#!/usr/bin/env python
"""The paper's running example: out-of-phase ECG classes (Figures 1 and 4).

Generates the ECGFiveDays-style two-class dataset (class A has a sharp
leading rise, class B a gradual one; instances are randomly out of phase),
then shows:

1. why the arithmetic-mean centroid smears the classes while shape
   extraction preserves them (Figure 4), and
2. how k-Shape's Rand Index compares to k-AVG+ED and PAM+cDTW, the
   strongest non-scalable baseline (the paper reports 84% vs 53% for
   k-medoids+cDTW on this dataset).

Run:  python examples/ecg_clustering.py
"""

import numpy as np

from repro import KMedoids, KShape, k_avg_ed, rand_index, sbd
from repro.averaging import arithmetic_mean
from repro.core import shape_extraction
from repro.datasets import load_dataset
from repro.harness import sparkline as ascii_sparkline


def main() -> None:
    dataset = load_dataset("ECGFiveDays-syn")
    X, y = dataset.X, dataset.y
    print(dataset.summary())

    print("\nSample sequences (note the phase differences within a class):")
    for label, tag in ((0, "A"), (1, "B")):
        members = X[y == label]
        for i in range(2):
            print(f"  class {tag}: {ascii_sparkline(members[i])}")

    print("\nCentroids per class — arithmetic mean vs shape extraction:")
    for label, tag in ((0, "A"), (1, "B")):
        members = X[y == label]
        mean_c = arithmetic_mean(members, znormalize=True)
        shape_c = shape_extraction(members, reference=members[0])
        print(f"  class {tag} mean : {ascii_sparkline(mean_c)}")
        print(f"  class {tag} shape: {ascii_sparkline(shape_c)}")
        print(f"    SBD(mean, shape) = {sbd(mean_c, shape_c):.3f} "
              "(how much the mean deviates from the extracted shape)")

    print("\nClustering comparison (Rand Index, 3 seeded runs each):")
    for name, factory in (
        ("k-Shape", lambda seed: KShape(2, random_state=seed)),
        ("k-AVG+ED", lambda seed: k_avg_ed(2, random_state=seed)),
        ("PAM+cDTW", lambda seed: KMedoids(2, metric="cdtw5", random_state=seed)),
    ):
        scores = [
            rand_index(y, factory(seed).fit(X).labels_) for seed in range(3)
        ]
        print(f"  {name:10s} Rand Index = {np.mean(scores):.3f}")


if __name__ == "__main__":
    main()
