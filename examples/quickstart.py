#!/usr/bin/env python
"""Quickstart: cluster a labeled time-series dataset with k-Shape.

Loads one dataset from the bundled synthetic archive, clusters the fused
train+test sequences with k-Shape, and scores the partition against the
ground-truth classes — the exact protocol of the paper's clustering
evaluation (Section 4).

Run:  python examples/quickstart.py [dataset-name]
"""

import sys

import numpy as np

from repro import KShape, adjusted_rand_index, k_avg_ed, rand_index
from repro.datasets import list_datasets, load_dataset


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ECGFiveDays-syn"
    if name not in list_datasets():
        print(f"unknown dataset {name!r}; available: {', '.join(list_datasets())}")
        raise SystemExit(1)

    dataset = load_dataset(name)
    print(dataset.summary())

    model = KShape(n_clusters=dataset.n_classes, n_init=3, random_state=0)
    model.fit(dataset.X)
    print(f"\nk-Shape converged after {model.n_iter_} iterations")
    print(f"Rand Index          : {rand_index(dataset.y, model.labels_):.3f}")
    print(f"Adjusted Rand Index : {adjusted_rand_index(dataset.y, model.labels_):.3f}")
    print(f"cluster sizes       : {np.bincount(model.labels_).tolist()}")

    baseline = k_avg_ed(dataset.n_clusters if hasattr(dataset, 'n_clusters')
                        else dataset.n_classes, n_init=3, random_state=0)
    baseline.fit(dataset.X)
    print(f"\nk-AVG+ED baseline Rand Index: "
          f"{rand_index(dataset.y, baseline.labels_):.3f}")

    print("\nFirst extracted centroid (head):")
    print(np.array2string(model.centroids_[0][:12], precision=3))


if __name__ == "__main__":
    main()
