#!/usr/bin/env python
"""A miniature end-to-end reproduction of the paper's evaluation.

Runs Table 2 (distance measures vs ED) and Table 3 (k-means variants vs
k-AVG+ED) through the same library protocols the benchmark suite uses, on
a small 3-dataset panel so it finishes in well under a minute. For the
full panels run ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py
"""

from repro.datasets import load_dataset
from repro.harness import (
    evaluate_distance_measures,
    evaluate_kmeans_variants,
    format_comparison_table,
)
from repro.stats import compare_to_baseline

PANEL = ["TriSaw", "PulsePosition", "ECGFiveDays-syn"]


def main() -> None:
    datasets = [load_dataset(name) for name in PANEL]
    print("panel:", ", ".join(ds.summary() for ds in datasets), "\n")

    print("Running the Table 2 protocol (1-NN, all distance measures)...")
    dist = evaluate_distance_measures(datasets, cdtw_opt_windows=(0.05,))
    order = ["DTW", "cDTWopt", "cDTW5", "cDTW10",
             "SBDNoFFT", "SBDNoPow2", "SBD"]
    scores = {"ED": dist.accuracies["ED"]}
    scores.update({m: dist.accuracies[m] for m in order})
    rows = compare_to_baseline(scores, "ED")
    print(format_comparison_table(
        rows, "ED", score_name="1-NN acc",
        runtime_factors=dist.runtime_factors("ED"),
        title="Table 2 (miniature)",
    ))

    print("\nRunning the Table 3 protocol (k-means variants, 2 runs each)...")
    km = evaluate_kmeans_variants(
        datasets,
        methods=("k-AVG+ED", "k-AVG+SBD", "KSC", "k-Shape"),
        n_runs=2,
    )
    rows = compare_to_baseline(km.scores, "k-AVG+ED")
    print(format_comparison_table(
        rows, "k-AVG+ED", score_name="Rand Index",
        runtime_factors=km.runtime_factors("k-AVG+ED"),
        title="Table 3 (miniature)",
    ))

    print("\nThe paper's shape in miniature: SBD rivals the DTW family at a")
    print("fraction of the cost, and k-Shape tops the k-means variants.")


if __name__ == "__main__":
    main()
