#!/usr/bin/env python
"""Query search and anomaly discovery in a long recording.

The paper's introduction lists querying and anomaly detection among the
tasks that motivate time-series mining. This example builds a long
"monitoring" recording, then:

1. finds where a short query pattern occurs (exact z-normalized search via
   the FFT-based MASS profile, and shift-invariant search via the SBD
   profile);
2. discovers the recording's anomalies (discords) with the matrix profile.

Run:  python examples/query_and_anomaly.py
"""

import numpy as np

from repro.harness import sparkline
from repro.search import best_match, find_discords, top_k_matches


def build_recording(rng):
    """A periodic 'sensor' signal with two injected anomalies."""
    t = np.linspace(0, 40, 1200)
    x = np.sin(2 * np.pi * t) + 0.4 * np.sin(2 * np.pi * 3 * t)
    x += rng.normal(0, 0.05, x.shape[0])
    spike = 2.0 * np.exp(-0.5 * ((np.arange(40) - 20) / 5.0) ** 2)
    x[500:540] += spike          # anomaly 1: a bump
    x[900:930] = x[900]          # anomaly 2: a sensor flatline
    return x


def main() -> None:
    rng = np.random.default_rng(21)
    x = build_recording(rng)
    print(f"recording: {x.shape[0]} samples")
    print(f"  {sparkline(x, 76)}\n")

    query = x[100:160]  # one clean period as the query
    idx, dist = best_match(query, x[200:])  # search beyond the source
    print(f"query best match (MASS): offset {idx + 200}, distance {dist:.3f}")
    print("top-3 non-overlapping matches:")
    for start, d in top_k_matches(query, x[200:], k=3):
        print(f"  start {start + 200:4d}  distance {d:.3f}")

    print("\ntop-3 discords (window 40):")
    for start, d in find_discords(x, 40, k=3):
        marker = ""
        if 460 <= start <= 540:
            marker = "  <- injected bump"
        elif 860 <= start <= 930:
            marker = "  <- injected flatline"
        print(f"  start {start:4d}  NN-distance {d:.3f}{marker}")
        print(f"    {sparkline(x[start:start + 40], 40)}")


if __name__ == "__main__":
    main()
