#!/usr/bin/env python
"""Multivariate k-Shape: clustering multi-channel records by shared shift.

Simulates 3-axis accelerometer-style records of two activity classes. The
channels of each record share one random phase (the recording started at an
arbitrary moment), which is exactly the regime the shared-shift
multivariate SBD models: alignment is decided jointly across channels.

Run:  python examples/multivariate_clustering.py
"""

import numpy as np

from repro import rand_index
from repro.harness import sparkline
from repro.multivariate import MultivariateKShape, mv_sbd, mv_zscore


def make_record(kind: str, rng) -> np.ndarray:
    """One 3-channel record with a shared random phase."""
    t = np.linspace(0, 1, 96)
    phase = rng.uniform(0, 1)
    if kind == "walk":  # smooth gait-like oscillation
        channels = [
            np.sin(2 * np.pi * (2 * t + phase)),
            0.6 * np.sin(2 * np.pi * (4 * t + phase)),
            np.cos(2 * np.pi * (2 * t + phase)),
        ]
    else:  # "run": faster, spikier
        channels = [
            np.sign(np.sin(2 * np.pi * (5 * t + phase))),
            np.sin(2 * np.pi * (5 * t + phase)) ** 3,
            np.cos(2 * np.pi * (10 * t + phase)),
        ]
    record = np.stack(channels)
    return record + rng.normal(0, 0.1, record.shape)


def main() -> None:
    rng = np.random.default_rng(3)
    X = np.stack(
        [make_record("walk", rng) for _ in range(12)]
        + [make_record("run", rng) for _ in range(12)]
    )
    X = mv_zscore(X)
    y = np.repeat([0, 1], 12)
    print(f"dataset: {X.shape[0]} records x {X.shape[1]} channels x "
          f"{X.shape[2]} samples")

    d_same = mv_sbd(X[0], X[1])
    d_cross = mv_sbd(X[0], X[12])
    print(f"\nMV-SBD within class : {d_same:.3f}")
    print(f"MV-SBD across class : {d_cross:.3f}")

    model = MultivariateKShape(2, random_state=0).fit(X)
    print(f"\nRand Index: {rand_index(y, model.labels_):.3f} "
          f"(converged in {model.n_iter_} iterations)")

    print("\nExtracted multivariate centroids (one sparkline per channel):")
    for j in range(2):
        print(f"  cluster {j}:")
        for ch in range(X.shape[1]):
            print(f"    ch{ch}: {sparkline(model.centroids_[j, ch], 60)}")


if __name__ == "__main__":
    main()
