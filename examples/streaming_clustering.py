#!/usr/bin/env python
"""Streaming clustering with mini-batch k-Shape.

Feeds sequences to :class:`repro.MiniBatchKShape` in small batches — as a
live pipeline would — and tracks how the clustering quality on a held-out
reference set evolves as more data streams past. Finishes by comparing
against full (batch) k-Shape on the complete dataset.

Run:  python examples/streaming_clustering.py
"""

import numpy as np

from repro import KShape, MiniBatchKShape, rand_index
from repro.preprocessing import zscore


def make_stream(n_per_class: int, rng):
    t = np.linspace(0, 1, 64)
    rows, labels = [], []
    for label, freq in enumerate((2.0, 4.0, 7.0)):
        for _ in range(n_per_class):
            rows.append(np.sin(2 * np.pi * (freq * t + rng.uniform(0, 1)))
                        + rng.normal(0, 0.1, 64))
            labels.append(label)
    order = rng.permutation(len(rows))
    return zscore(np.asarray(rows))[order], np.asarray(labels)[order]


def main() -> None:
    rng = np.random.default_rng(11)
    X, y = make_stream(80, rng)
    holdout, y_holdout = X[:60], y[:60]
    stream, y_stream = X[60:], y[60:]
    print(f"stream: {stream.shape[0]} sequences in batches of 30; "
          f"holdout: {holdout.shape[0]}")

    model = MiniBatchKShape(3, reservoir_size=60, random_state=0)
    print("\nbatch  seen  holdout Rand Index")
    for start in range(0, stream.shape[0], 30):
        model.partial_fit(stream[start:start + 30])
        score = rand_index(y_holdout, model.predict(holdout))
        print(f"{start // 30 + 1:5d}  {model.n_seen_:4d}  {score:.3f}")

    full = KShape(3, random_state=0).fit(X)
    print(f"\nfull k-Shape on all {X.shape[0]} sequences: "
          f"Rand Index {rand_index(y, full.labels_):.3f}")
    print(f"mini-batch final (holdout): "
          f"{rand_index(y_holdout, model.predict(holdout)):.3f}")


if __name__ == "__main__":
    main()
