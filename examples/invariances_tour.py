#!/usr/bin/env python
"""A tour of the paper's Section 2.2 invariances, each with its tool.

For every distortion the paper catalogs, this script builds a distorted
copy of a base pattern and shows which preprocessing step or distance
measure neutralizes it:

* scaling & translation  -> z-normalization
* shift (global)         -> SBD
* local warping          -> (c)DTW
* uniform scaling        -> us_sbd (stretch-searching SBD)
* occlusion              -> fill_missing + SBD
* complexity (noise)     -> moving_average + SBD

Run:  python examples/invariances_tour.py
"""

import numpy as np

from repro import cdtw, euclidean, sbd
from repro.distances import us_sbd
from repro.preprocessing import (
    fill_missing,
    moving_average,
    shift_series,
    zscore,
)


def report(name, naive, treated, treatment):
    print(f"{name:22s} naive ED/SBD = {naive:7.3f}   "
          f"after {treatment:28s} = {treated:7.3f}")


def main() -> None:
    rng = np.random.default_rng(9)
    t = np.linspace(0, 1, 128)
    base = np.sin(2 * np.pi * 2 * t) + 0.5 * np.sin(2 * np.pi * 5 * t)
    zbase = zscore(base)
    print("distortion             before                after treatment\n")

    # 1. Scaling and translation: y = a*x + b.
    distorted = 3.0 * base + 10.0
    report("scaling+translation", euclidean(base, distorted),
           euclidean(zbase, zscore(distorted)), "z-normalization")

    # 2. Global shift: out-of-phase copy.
    shifted = shift_series(zbase, 9)
    report("shift (global)", euclidean(zbase, shifted),
           sbd(zbase, shifted), "SBD")

    # 3. Local warping.
    warped_t = t + 0.03 * np.sin(2 * np.pi * (t + 0.3))
    warped = zscore(np.sin(2 * np.pi * 2 * warped_t)
                    + 0.5 * np.sin(2 * np.pi * 5 * warped_t))
    report("local warping", euclidean(zbase, warped),
           cdtw(zbase, warped, 0.1), "cDTW (10% band)")

    # 4. Uniform scaling: the same shape played 20% faster.
    fast = zscore(np.sin(2 * np.pi * 2 * 1.2 * t)
                  + 0.5 * np.sin(2 * np.pi * 5 * 1.2 * t))
    report("uniform scaling", sbd(zbase, fast),
           us_sbd(zbase, fast, scales=(0.7, 0.83, 1.0, 1.2)),
           "us_sbd (speed search)")

    # 5. Occlusion: a missing chunk.
    damaged = zbase.copy()
    damaged[40:56] = np.nan
    repaired = zscore(fill_missing(damaged))
    print(f"{'occlusion':22s} naive: undefined (NaN)        "
          f"after fill_missing + SBD          = {sbd(zbase, repaired):7.3f}")

    # 6. Complexity: heavy noise on one copy.
    noisy = zscore(base + rng.normal(0, 0.8, 128))
    smoothed = zscore(moving_average(noisy, 7))
    report("complexity (noise)", sbd(zbase, noisy),
           sbd(zbase, smoothed), "moving_average + SBD")

    print("\nEach invariance the paper catalogs (Section 2.2) maps to a "
          "specific tool;\nz-normalization + SBD covers the two the paper "
          "argues are generally sufficient.")


if __name__ == "__main__":
    main()
