#!/usr/bin/env python
"""The alternative clustering families the paper contrasts with k-Shape.

Runs four fundamentally different approaches on the same event-shaped
dataset and compares them:

* **raw-based** k-Shape (the paper's contribution);
* **density-based** DBSCAN over the SBD dissimilarity matrix;
* **statistical-based** u-shapelet clustering (local discriminative
  subsequences);
* **feature-based** k-means on characteristics features.

Run:  python examples/beyond_kshape.py
"""

import numpy as np

from repro import KShape, TimeSeriesKMeans, rand_index
from repro.clustering import DBSCAN, UShapeletClustering
from repro.features import extract_feature_matrix
from repro.harness import sparkline
from repro.preprocessing import zscore


def make_data(rng):
    """Two classes: a single sharp bump vs a double bump, jittered."""
    t = np.linspace(0, 1, 96)
    rows, labels = [], []
    for label in (0, 1):
        for _ in range(15):
            c = rng.uniform(0.3, 0.7)
            if label == 0:
                pattern = np.exp(-0.5 * ((t - c) / 0.03) ** 2)
            else:
                pattern = (np.exp(-0.5 * ((t - c + 0.06) / 0.03) ** 2)
                           + np.exp(-0.5 * ((t - c - 0.06) / 0.03) ** 2))
            rows.append(pattern + rng.normal(0, 0.05, 96))
            labels.append(label)
    return zscore(np.asarray(rows)), np.asarray(labels)


def main() -> None:
    rng = np.random.default_rng(5)
    X, y = make_data(rng)
    print(f"dataset: {X.shape[0]} sequences, 2 classes")
    print(f"  class 0 sample: {sparkline(X[0], 60)}")
    print(f"  class 1 sample: {sparkline(X[-1], 60)}\n")

    # Raw-based.
    ks = KShape(2, random_state=0, n_init=3).fit(X)
    print(f"k-Shape (raw-based)        RI = {rand_index(y, ks.labels_):.3f}")

    # Density-based: cluster cores, ignore noise in the score.
    db = DBSCAN(eps=0.15, min_samples=3, metric="sbd").fit(X)
    clustered = db.labels_ >= 0
    score = rand_index(y[clustered], db.labels_[clustered]) if clustered.any() else 0.0
    print(f"DBSCAN+SBD (density-based) RI = {score:.3f} "
          f"({int((~clustered).sum())} noise points)")

    # Statistical-based: u-shapelets.
    us = UShapeletClustering(2, random_state=0).fit(X)
    print(f"u-shapelets (statistical)  RI = {rand_index(y, us.labels_):.3f} "
          f"({len(us.result_.extra['shapelets'])} shapelets found)")
    for s in us.result_.extra["shapelets"]:
        print(f"  shapelet (gap {s.gap:.2f}): {sparkline(s.values, 40)}")

    # Feature-based.
    F = extract_feature_matrix(X)
    fb = TimeSeriesKMeans(2, metric="ed", n_init=5, random_state=0).fit(F)
    print(f"characteristics features   RI = {rand_index(y, fb.labels_):.3f}")

    print("\nAll four families can solve this two-class problem, but note the "
          "knobs each needed:\nDBSCAN an eps tuned to the SBD scale, "
          "u-shapelets a subsequence search, features a\nhand-picked vector "
          "— while k-Shape ran parameter-free. That is the paper's\n"
          "domain-independence argument (Section 2.4).")


if __name__ == "__main__":
    main()
