#!/usr/bin/env python
"""Compare distance measures by 1-NN accuracy and runtime (Table 2 in small).

Runs ED, SBD, cDTW5, and full DTW through the paper's 1-NN evaluation
protocol on a handful of archive datasets and prints an accuracy/runtime
table. Demonstrates the headline result: SBD lands near cDTW's accuracy at
a fraction of the cost, and both beat ED.

Run:  python examples/distance_comparison.py
"""

import time

import numpy as np

from repro import one_nn_accuracy
from repro.datasets import load_dataset
from repro.harness import format_table

DATASETS = ["SineSquare", "FreqSines", "PulsePosition", "ECGFiveDays-syn"]
MEASURES = ["ed", "sbd", "cdtw5", "dtw"]


def main() -> None:
    accs = {m: [] for m in MEASURES}
    times = {m: 0.0 for m in MEASURES}
    for name in DATASETS:
        ds = load_dataset(name)
        for measure in MEASURES:
            start = time.perf_counter()
            acc = one_nn_accuracy(
                ds.X_train, ds.y_train, ds.X_test, ds.y_test, metric=measure
            )
            times[measure] += time.perf_counter() - start
            accs[measure].append(acc)

    rows = []
    for measure in MEASURES:
        rows.append([
            measure.upper(),
            float(np.mean(accs[measure])),
            f"{times[measure] / times['ed']:.1f}x",
        ])
    print(format_table(
        ["Measure", "Mean 1-NN accuracy", "Runtime vs ED"], rows,
        title=f"1-NN over {len(DATASETS)} archive datasets",
    ))
    print("\nPer-dataset accuracy:")
    header = "  {:18s}".format("dataset") + "".join(
        f"{m.upper():>8s}" for m in MEASURES
    )
    print(header)
    for i, name in enumerate(DATASETS):
        print("  {:18s}".format(name) + "".join(
            f"{accs[m][i]:8.3f}" for m in MEASURES
        ))


if __name__ == "__main__":
    main()
