#!/usr/bin/env python
"""Figure 2: ED vs DTW alignment and the Sakoe-Chiba band.

Builds two out-of-phase sequences and renders (in ASCII):

* the one-to-one alignment ED uses vs the elastic one-to-many alignment
  DTW finds (Figure 2a), and
* the Sakoe-Chiba band with the cDTW warping path inside it (Figure 2b).

Run:  python examples/alignment_visualization.py
"""

import numpy as np

from repro.distances import dtw, dtw_path, euclidean, sakoe_chiba_mask
from repro.preprocessing import zscore


def main() -> None:
    m = 24
    t = np.linspace(0, 1, m)
    x = zscore(np.sin(2 * np.pi * (t + 0.00)))
    y = zscore(np.sin(2 * np.pi * (t + 0.12)))   # out of phase

    print(f"ED(x, y)  = {euclidean(x, y):.3f}  (rigid one-to-one alignment)")
    print(f"DTW(x, y) = {dtw(x, y):.3f}  (elastic alignment)")
    d5, path = dtw_path(x, y, window=5)
    print(f"cDTW(x, y, w=5 cells) = {d5:.3f}")

    print("\nDTW coupling (x index -> y indices):")
    couples = {}
    for i, j in path:
        couples.setdefault(i, []).append(j)
    for i in range(0, m, 4):
        mapped = ",".join(map(str, couples[i]))
        print(f"  x[{i:2d}] -> y[{mapped}]")

    print("\nSakoe-Chiba band (.' = band, '#' = warping path):  (Figure 2b)")
    mask = sakoe_chiba_mask(m, m, 5)
    grid = [["." if mask[i, j] else " " for j in range(m)] for i in range(m)]
    for i, j in path:
        grid[i][j] = "#"
    for row in grid:
        print("  |" + "".join(row) + "|")

    print("\nThe path hugs the diagonal but bends to absorb the phase shift —")
    print("the local, non-linear alignment of the paper's Figure 1/2.")


if __name__ == "__main__":
    main()
